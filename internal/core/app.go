package core

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"ftsg/internal/checkpoint"
	"ftsg/internal/combine"
	"ftsg/internal/faultgen"
	"ftsg/internal/ftcomb"
	"ftsg/internal/grid"
	"ftsg/internal/metrics"
	"ftsg/internal/mpi"
	"ftsg/internal/pde"
	"ftsg/internal/recovery"
	"ftsg/internal/topo"
	"ftsg/internal/trace"
)

// nominalSteps is the paper's timestep count (2^13); together with
// ComputeScale it maps one-shot operations (the combination) onto the
// nominal problem size.
const nominalSteps = 8192

// Application tags on the world communicator.
const (
	tagRecoverBase = 2000 // + lost grid ID: replication/resampling transfer
	tagCombineBase = 3000 // + grid ID: sub-grid solutions to rank 0
)

// runState is the state shared (in-process) by all simulated ranks of one
// run. Result fields are guarded by mu.
type runState struct {
	cfg     Config
	grids   []SubGrid
	prob    *pde.Problem
	dt      float64
	ckPlan  checkpoint.Plan
	store   *checkpoint.Store
	plan    *faultgen.Plan
	opPlan  *faultgen.OpPlan
	simLost []int
	cluster *topo.Cluster
	place   recovery.Placement
	reg     *metrics.Registry

	flightOnce sync.Once

	mu  sync.Mutex
	res Result
}

// flightSeq numbers automatic flight-recorder dump files within a process.
var flightSeq atomic.Int64

// dumpFlight writes the run's trace recorder (the always-on flight recorder
// unless the caller attached a full one) to a post-mortem file, once per
// run. reason names the trigger in the stderr note; failures to write are
// reported but never mask the original abort.
func (rs *runState) dumpFlight(reason string) {
	rs.flightOnce.Do(func() {
		dir := rs.cfg.FlightDumpDir
		if dir == "" {
			dir = os.TempDir()
		}
		path := filepath.Join(dir, fmt.Sprintf("ftsg-flight-%d-%d.trace.json",
			os.Getpid(), flightSeq.Add(1)))
		if err := rs.cfg.Trace.DumpChromeTrace(path); err != nil {
			fmt.Fprintf(os.Stderr, "core: %s: flight recorder dump failed: %v\n", reason, err)
			return
		}
		fmt.Fprintf(os.Stderr, "core: %s: flight recorder dumped to %s\n", reason, path)
	})
}

// Run executes the fault-tolerant application and returns its metrics.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Every run carries a trace recorder: an explicit one from the caller,
	// or the bounded always-on flight recorder, so an abort or watchdog fire
	// can leave a Perfetto-loadable post-mortem without -trace-out.
	if cfg.Trace == nil {
		cfg.Trace = trace.NewFlight(0)
	}
	rs := &runState{cfg: cfg, grids: cfg.Grids()}
	// A watchdog fire means the run is lost: dump the flight recorder before
	// the configured stall handling (panic when OnStall is nil, abort
	// otherwise) so the deadlock leaves a timeline, not just the text dump.
	if cfg.Watchdog.Timeout > 0 {
		inner := cfg.Watchdog.OnStall
		rs.cfg.Watchdog.OnStall = func(dump string) {
			rs.dumpFlight("watchdog stall")
			if inner == nil {
				panic(dump)
			}
			inner(dump)
		}
	}
	rs.prob, rs.dt = cfg.Problem()
	for _, g := range rs.grids {
		if err := pde.CheckStable(g.Lv, rs.prob, rs.dt); err != nil {
			return nil, err
		}
	}

	stepTime := cfg.EstimateStepTime()
	mtbf := cfg.MTBF
	if mtbf == 0 {
		mtbf = float64(cfg.Steps) * stepTime / 2 // the paper's setup
	}
	rs.ckPlan = checkpoint.NewPlan(cfg.Steps, stepTime, mtbf, cfg.Machine.TIOWrite)

	// Instrumentation: an explicit registry (possibly shared across runs
	// for aggregate summaries) wins; Telemetry attaches a private one so
	// the Result's traffic/IO fields come out populated. Resolved before
	// the checkpoint store so the store's instruments land on it.
	reg := cfg.Metrics
	if reg == nil && cfg.Telemetry {
		reg = metrics.New()
	}

	// The checkpoint store exists only under CR — the other techniques
	// never touch disk, and skipping it spares every RC/AC run a temp dir.
	if cfg.Technique == CheckpointRestart {
		var backend checkpoint.Backend
		removeAll := false
		switch cfg.CheckpointBackend {
		case "", "dir":
			dir := cfg.CheckpointDir
			if dir == "" {
				var err error
				dir, err = os.MkdirTemp("", "ftsg-ckpt-*")
				if err != nil {
					return nil, err
				}
				removeAll = true
			}
			b, err := checkpoint.OpenDir(dir)
			if err != nil {
				return nil, err
			}
			backend = b
		case "mem":
			backend = checkpoint.NewMem()
			removeAll = true
		default:
			return nil, fmt.Errorf("core: unknown checkpoint backend %q", cfg.CheckpointBackend)
		}
		store, err := checkpoint.Open(checkpoint.Options{
			Backend:     cfg.CheckpointFaults.Wrap(backend),
			Generations: cfg.CheckpointGenerations,
			Async:       cfg.CheckpointAsync,
			Metrics:     reg,
		})
		if err != nil {
			return nil, err
		}
		rs.store = store
		if removeAll {
			defer func() { _ = store.Remove() }()
		} else {
			defer func() { _ = store.Close() }()
		}
	}

	var err error
	var conflicts [][2]int
	if cfg.Technique == ResamplingCopying {
		conflicts = rcConflicts(rs.grids)
	}
	nprocs := cfg.NumProcs()

	// Cluster layout, optionally with an explicit shape (hosts/slots/racks)
	// and spare nodes; placement policy for replacements (same host by
	// default, spare node when available).
	slots := cfg.Machine.SlotsPerHost
	if cfg.SlotsPerHost > 0 {
		slots = cfg.SlotsPerHost
	}
	baseHosts := (nprocs + slots - 1) / slots
	if cfg.Hosts > 0 {
		baseHosts = cfg.Hosts
	}
	racks := cfg.Racks
	if racks < 1 {
		racks = 1
	}
	rs.cluster = topo.NewRacked(baseHosts+cfg.SpareNodes, slots, racks)
	rs.place = recovery.SameHostPlacement
	if cfg.SpareNodes > 0 {
		rs.place = recovery.SpareNodePlacement(rs.cluster.Host(baseHosts).Name)
	}

	gridOfID := func(rank int) int {
		g, gerr := gridOfRank(rs.grids, rank)
		if gerr != nil {
			return -1
		}
		return g.ID
	}
	if cfg.NodeFailure {
		rs.plan, err = faultgen.NodePlan(cfg.Seed, cfg.FailStep, nprocs, func(rank int) int {
			h, herr := rs.cluster.HostIndexOfRank(rank)
			if herr != nil {
				return -1
			}
			return h
		})
		if err != nil {
			return nil, err
		}
	} else if len(cfg.FailSchedule) > 0 {
		rs.plan, err = faultgen.Schedule(faultgen.Config{
			Seed:      cfg.Seed,
			NumRanks:  nprocs,
			GridOf:    gridOfID,
			Conflicts: conflicts,
		}, cfg.FailSchedule)
		if err != nil {
			return nil, err
		}
	} else if cfg.NumFailures > 0 {
		if cfg.RealFailures {
			rs.plan, err = faultgen.New(faultgen.Config{
				Seed:        cfg.Seed,
				NumFailures: cfg.NumFailures,
				Step:        cfg.FailStep,
				NumRanks:    nprocs,
				GridOf:      gridOfID,
				Conflicts:   conflicts,
			})
		} else {
			// Simulated losses hit the combined solution grids and, for
			// RC, the duplicates (the paper's "loss of 5 out of 10 grids"
			// counts them — and without them the pairwise recovery
			// constraints cap the losses at 3). Grid 0 holds the
			// controlling rank 0 and is protected.
			var candidates []int
			for _, g := range rs.grids[1:] {
				switch g.Role {
				case RoleDiagonal, RoleLowerDiagonal:
					candidates = append(candidates, g.ID)
				case RoleDuplicate:
					if cfg.Technique == ResamplingCopying {
						candidates = append(candidates, g.ID)
					}
				}
			}
			rs.simLost, err = faultgen.PickGrids(cfg.Seed, cfg.NumFailures, candidates, conflicts)
			sort.Ints(rs.simLost)
		}
		if err != nil {
			return nil, err
		}
	}
	if len(cfg.OpFailures) > 0 {
		// Operation-granularity victims: decorrelate the draw from the step
		// plan's seed (same seed, different stream) and exclude its victims,
		// so both kinds of failure can hit the same run without colliding.
		var exclude []int
		if rs.plan != nil {
			exclude = rs.plan.Victims()
		}
		rs.opPlan, err = faultgen.NewOpPlan(faultgen.Config{
			Seed:      cfg.Seed + 7919,
			NumRanks:  nprocs,
			GridOf:    gridOfID,
			Conflicts: conflicts,
		}, cfg.OpFailures, exclude)
		if err != nil {
			return nil, err
		}
	}

	rs.res = Result{
		Technique:      cfg.Technique,
		Machine:        cfg.Machine.Name,
		Procs:          nprocs,
		GridCount:      len(rs.grids),
		Steps:          cfg.Steps,
		CheckpointPlan: rs.ckPlan,
		LostGrids:      append([]int(nil), rs.simLost...),
		TIOWrite:       cfg.Machine.TIOWrite,
		Mode:           cfg.RecoveryMode.String(),
		FinalProcs:     nprocs, // non-spawn modes overwrite at the end of the run
	}

	// Substitute mode parks its spare processes on the spare node (the same
	// place spawn-mode replacements land when SpareNodes is configured);
	// WithDefaults guarantees a spare node exists whenever SpareRanks > 0.
	var spareHosts []string
	if cfg.SpareRanks > 0 {
		spareHosts = []string{rs.cluster.Host(baseHosts).Name}
	}

	rs.reg = reg
	opts := mpi.Options{
		NProcs:     nprocs,
		Machine:    cfg.Machine,
		Cluster:    rs.cluster,
		Metrics:    reg,
		Watchdog:   rs.cfg.Watchdog,
		Introspect: cfg.Introspect,
		SpareRanks: cfg.SpareRanks,
		SpareHosts: spareHosts,
	}
	if cfg.Event {
		opts.EventEntry = rs.eventEntry
		opts.EventWorkers = cfg.EventWorkers
	} else {
		opts.Entry = rs.entry
	}
	rep, err := mpi.Run(opts)
	if err != nil {
		return nil, err
	}
	rs.res.TotalTime = rep.MaxVirtualTime
	rs.res.Spawned = rep.Spawned
	rs.res.SparesUsed = rep.SparesUsed
	if reg != nil {
		// With a shared registry these are cumulative across the runs
		// recorded so far, not per-run.
		rs.res.MPIMessages = reg.Counter("mpi.sent.messages").Value()
		rs.res.MPIBytes = reg.Counter("mpi.sent.bytes").Value()
		rs.res.CheckpointBytesOut = reg.Counter("checkpoint.bytes.written").Value()
		rs.res.CheckpointBytesIn = reg.Counter("checkpoint.bytes.read").Value()
	}
	return &rs.res, nil
}

// detectionPoints lists the steps at which failure detection is tested:
// before every checkpoint write for CR, only before the combination for RC
// and AC (Section III of the paper).
func (rs *runState) detectionPoints() []int {
	var dps []int
	if rs.cfg.Technique == CheckpointRestart {
		for s := rs.ckPlan.IntervalSteps; s < rs.cfg.Steps; s += rs.ckPlan.IntervalSteps {
			dps = append(dps, s)
		}
	}
	return append(dps, rs.cfg.Steps)
}

func (rs *runState) entry(p *mpi.Proc) {
	if err := rs.rank(p); err != nil {
		if errors.Is(err, recovery.ErrOrphaned) {
			// This replacement's repair round was hit by a further failure
			// and abandoned; the survivors retried with fresh replacements.
			// Exiting cleanly is the whole of its job.
			return
		}
		// The run is about to abort: leave the flight-recorder post-mortem
		// before panicking out of the simulated process.
		rs.dumpFlight(fmt.Sprintf("rank %d abort", p.WorldRank()))
		panic(fmt.Sprintf("core: world rank %d: %v", p.WorldRank(), err))
	}
}

// rank is the program every simulated process runs, including re-spawned
// replacements.
func (rs *runState) rank(p *mpi.Proc) error {
	cfg := rs.cfg
	charge := func(cells int) { p.ComputeCells(cells, cfg.ComputeScale) }
	journal := cfg.Journal

	// Recovery-overlap accounting: per-rank virtual time blocked in the
	// detect/repair window vs advancing the solve. Nil-safe throughout; the
	// non-blocking-recovery work uses these as its before/after yardstick.
	repairVec := rs.reg.TimeSumVec("rank.vtime.repair")
	advanceVec := rs.reg.TimeSumVec("rank.vtime.advance")

	var world *mpi.Comm
	var rank, cur int
	var failedList []int
	replacement := p.Parent() != nil
	// epoch counts the communicator repairs this process has lived through —
	// the journal's "which incarnation of the world" stamp. A replacement is
	// born out of repair round one (or a later one; it cannot tell, and the
	// stamp only needs to order events on one rank's timeline).
	epoch := 0
	myStats := recovery.Stats{Trace: cfg.Trace, Metrics: rs.reg}

	// Non-spawn recovery modes carry per-rank mode state (position mapping,
	// holes, abandoned grids); spawn leaves mc nil and every spawn code path
	// byte-identical. `rank` always holds this process's ORIGINAL rank — the
	// stable identity behind grid assignment, fault plans, and metric labels —
	// while communicator positions shift under shrinks.
	var mc *modeCtx
	if cfg.RecoveryMode != recovery.ModeSpawn {
		mc = newModeCtx(cfg.RecoveryMode, cfg.NumProcs())
		myStats.ModeLabel = cfg.RecoveryMode.String()
	}

	if replacement {
		tAttach := p.Now()
		if mc == nil {
			w, r, err := recovery.ReconstructPlaced(p, nil, p.Parent(), &myStats, rs.place)
			if err != nil {
				return err
			}
			world, rank = w, r
		} else {
			// A claimed spare (substitute mode): attach through the mode-aware
			// protocol, then learn everything else — including which original
			// rank it replaces — from rank 0's broadcast.
			mr, err := recovery.ReconstructMode(p, nil, p.Parent(), &myStats, rs.place, cfg.RecoveryMode, nil)
			if err != nil {
				return err
			}
			world = mr.Comm
			var aband, origOf []int
			var serr error
			cur, failedList, aband, origOf, serr = syncRecoveryInfoMode(world, 0, nil, nil, nil)
			if serr != nil {
				return serr
			}
			mc.adopt(origOf, aband, failedList)
			rank = mc.origOf[world.Rank()]
		}
		epoch = 1
		repairVec.At(rank).Add(p.Now() - tAttach)
	} else {
		world = p.World()
		rank = world.Rank()
	}

	mine, err := gridOfRank(rs.grids, rank)
	if err != nil {
		return err
	}

	build := func(w *mpi.Comm) (*mpi.Comm, pde.Solver, error) {
		gc, err := w.Split(mine.ID, rank)
		if err != nil {
			return nil, nil, fmt.Errorf("group split: %w", err)
		}
		var s pde.Solver
		if cfg.Decomp2D {
			px, py := decompDims(gc.Size(), mine.Lv)
			s, err = pde.NewParallelSolver2D(gc, rs.prob, mine.Lv, rs.dt, px, py)
		} else {
			s, err = pde.NewParallelSolver(gc, rs.prob, mine.Lv, rs.dt)
		}
		if err != nil {
			return nil, nil, err
		}
		s.SetCharge(charge)
		return gc, s, nil
	}

	var gcomm *mpi.Comm
	var solver pde.Solver
	if replacement {
		// Rejoin the survivors: learn the detection step and failed ranks,
		// rebuild the group communicator, and take part in data recovery
		// (same sequence as the survivors' failure branch below). Substitute
		// children already ran their broadcast above, alongside the attach.
		if mc == nil {
			cur, failedList, err = syncRecoveryInfo(world, 0, nil)
			if err != nil {
				return err
			}
		}
		// Invariant: this replacement adopted its predecessor's (original)
		// rank, so that rank must be in the failed list rank 0 announced.
		if !containsInt(failedList, rank) {
			return fmt.Errorf("core: replacement adopted rank %d but rank 0 announced failed ranks %v", rank, failedList)
		}
		cfg.Trace.Emit(p.Now(), rank, "respawn",
			"replacement world id %d attached on host %d, rejoining at step %d",
			p.WorldRank(), p.Host(), cur)
		journal.Emit(p.Now(), rank, epoch, "respawn",
			slog.Int("step", cur), slog.Int("world_id", p.WorldRank()), slog.Int("host", p.Host()))
		gcomm, solver, err = build(world)
		if err != nil {
			return err
		}
		rs.flushCheckpoints(p, rank, cur)
		if err := rs.recoverData(p, world, gcomm, solver, mine, failedList, cur, epoch, mc, rs.activeRecoverIDs(mc, failedList)); err != nil {
			return err
		}
		rs.mergeStats(&myStats, failedList)
	} else {
		gcomm, solver, err = build(world)
		if err != nil {
			return err
		}
	}

	// Operation-granularity fault injection (chaos campaigns): the hook is
	// armed only across the solve + detect/repair window of each detection
	// interval — the phases whose peers tolerate a mid-operation death — and
	// disarmed before the recovery-info broadcast, data recovery and the
	// combination. Its op count persists across windows. Replacements never
	// poll or hook: their predecessor already died.
	var opHook mpi.OpHook
	if !replacement {
		opHook = rs.opPlan.Hook(p, rank)
	}

	// gridLost marks this rank's sub-grid as dead: set transiently when a
	// group member dies mid-solve (cleared once recovery restores the data),
	// and persistently when a non-spawn mode abandons the grid — the rank
	// then stops stepping and checkpointing but keeps taking part in
	// detection and the final combination (with coefficient zero).
	gridLost := mc != nil && mc.abandoned[mine.ID]
	var detectOverhead float64
	var stateBuf []float64 // persistent checkpoint-encode scratch, reused across writes
	for _, dp := range rs.detectionPoints() {
		if dp <= cur {
			continue
		}
		if opHook != nil {
			p.SetOpHook(opHook)
		}
		tSolve := p.Now()
		solveSpan := cfg.Trace.BeginSpan(tSolve, rank, "solve", "steps %d..%d", cur+1, dp)
		for s := cur + 1; s <= dp; s++ {
			if !replacement && rs.plan != nil {
				if journal != nil {
					if at, ok := rs.plan.DeathStep(rank); ok && at == s {
						journal.Emit(p.Now(), rank, epoch, "fault-inject", slog.Int("step", s))
					}
				}
				rs.plan.Poll(p, rank, s)
			}
			if !gridLost {
				if err := solver.Step(); err != nil {
					// A group member died mid-solve: revoke the group
					// communicators (both the split result and the solver's
					// working communicator — the 2D solver runs on a
					// Cartesian duplicate) so blocked peers stop too,
					// abandon the grid, and wait for global detection.
					gridLost = true
					_ = solver.GroupComm().Revoke()
					_ = gcomm.Revoke()
				}
			}
		}
		solveSpan.End(p.Now())
		advanceVec.At(rank).Add(p.Now() - tSolve)
		cur = dp

		tRepair := p.Now()
		st := recovery.Stats{Trace: cfg.Trace, Metrics: rs.reg, ModeLabel: myStats.ModeLabel}
		var newWorld *mpi.Comm
		var newRank int
		var mr *recovery.ModeResult
		if mc == nil {
			newWorld, newRank, err = recovery.ReconstructPlaced(p, world, nil, &st, rs.place)
		} else {
			mr, err = recovery.ReconstructMode(p, world, nil, &st, rs.place, cfg.RecoveryMode, mc.origOf)
			if err == nil {
				newWorld, newRank = mr.Comm, mr.Rank
			}
		}
		if opHook != nil {
			p.SetOpHook(nil)
		}
		if err != nil {
			return err
		}
		repairVec.At(rank).Add(p.Now() - tRepair)
		var recoverIDs []int
		if st.ReconstructTime > 0 {
			// A failure was repaired: re-derive everything that hung off
			// the old communicator — after checking the protocol's core
			// promises. Spawn (paper Fig. 3) promises same size, same rank
			// order; the other modes promise that every survivor keeps its
			// original identity while the size shrinks (shrink/no-repair,
			// or a substitute round that fell back) or is restored from
			// spares (substitute).
			if mc == nil {
				if newRank != rank {
					return fmt.Errorf("core: repaired communicator moved rank %d to %d", rank, newRank)
				}
				if newWorld.Size() != world.Size() {
					return fmt.Errorf("core: repaired communicator size %d, want %d", newWorld.Size(), world.Size())
				}
				world, rank = newWorld, newRank
				_, failedList, err = syncRecoveryInfo(world, dp, st.FailedRanks)
				if err != nil {
					return err
				}
				// Invariant: every survivor derived the failed-rank list locally
				// (Fig. 6 group algebra); it must agree with rank 0's broadcast.
				if !equalInts(failedList, st.FailedRanks) {
					return fmt.Errorf("core: rank %d derived failed ranks %v but rank 0 announced %v", rank, st.FailedRanks, failedList)
				}
			} else {
				if newWorld.Size() != len(mr.OrigOf) {
					return fmt.Errorf("core: repaired communicator size %d but position map covers %d", newWorld.Size(), len(mr.OrigOf))
				}
				if mr.OrigOf[newRank] != rank {
					return fmt.Errorf("core: repaired communicator position %d holds original rank %d, want %d", newRank, mr.OrigOf[newRank], rank)
				}
				if cfg.RecoveryMode == recovery.ModeSubstitute && mr.Fallbacks == 0 {
					if newWorld.Size() != world.Size() {
						return fmt.Errorf("core: substitute repair changed communicator size %d -> %d", world.Size(), newWorld.Size())
					}
				} else if newWorld.Size() >= world.Size() {
					return fmt.Errorf("core: %v repair did not shrink the communicator (%d -> %d)", cfg.RecoveryMode, world.Size(), newWorld.Size())
				}
				world = newWorld // rank keeps its original identity
				mc.fallbacks += mr.Fallbacks
				recoverIDs = rs.applyEvent(mc, mr.OrigOf, st.FailedRanks)
				var aband, origOf []int
				_, failedList, aband, origOf, err = syncRecoveryInfoMode(world, dp, st.FailedRanks, mc.abandonedList(), mc.origOf)
				if err != nil {
					return err
				}
				// Invariants: the locally derived failed list, position map and
				// abandoned set must all agree with rank 0's broadcast — every
				// survivor folded the same event into the same prior state.
				if !equalInts(failedList, st.FailedRanks) {
					return fmt.Errorf("core: rank %d derived failed ranks %v but rank 0 announced %v", rank, st.FailedRanks, failedList)
				}
				if !equalInts(origOf, mc.origOf) {
					return fmt.Errorf("core: rank %d derived position map %v but rank 0 announced %v", rank, mc.origOf, origOf)
				}
				if !equalInts(aband, mc.abandonedList()) {
					return fmt.Errorf("core: rank %d derived abandoned grids %v but rank 0 announced %v", rank, mc.abandonedList(), aband)
				}
			}
			if rank == 0 {
				cfg.Trace.Emit(p.Now(), rank, "repair",
					"failed ranks %v repaired at step %d (shrink %.2fs, spawn %.2fs, merge %.3fs, agree %.2fs, split %.3fs)",
					failedList, dp, st.ShrinkTime, st.SpawnTime, st.MergeTime, st.AgreeTime, st.SplitTime)
				if journal != nil {
					journal.Emit(p.Now(), rank, epoch, "failure-detected",
						slog.Int("step", dp), slog.String("failed", fmt.Sprint(failedList)))
					for _, ph := range []struct {
						name    string
						seconds float64
					}{
						{"detect", st.ListTime}, {"shrink", st.ShrinkTime},
						{"spawn", st.SpawnTime}, {"merge", st.MergeTime},
						{"agree", st.AgreeTime}, {"split", st.SplitTime},
					} {
						journal.Emit(p.Now(), rank, epoch, "repair-phase",
							slog.String("phase", ph.name), slog.Float64("seconds", ph.seconds),
							slog.Int("step", dp))
					}
				}
			}
			epoch++
			oldState, oldStep := solver.State(), solver.Steps()
			gcomm, solver, err = build(world)
			if err != nil {
				return err
			}
			// Carry the pre-repair state into the rebuilt solver. Spawn uses
			// the local mid-solve signal (gridLost); the other modes decide
			// from the broadcast-agreed damage so all members of a grid act
			// identically: a damaged grid's state is rebuilt by recoverData
			// (or the grid is abandoned), and restoring would either be
			// redundant or shape-mismatched after a shrink.
			restorable := !gridLost
			if mc != nil {
				restorable = !containsInt(rs.lostGridIDs(failedList), mine.ID) && !mc.abandoned[mine.ID]
			}
			if restorable {
				if err := solver.Restore(oldStep, oldState); err != nil {
					return err
				}
			}
			rs.flushCheckpoints(p, rank, dp)
			if err := rs.recoverData(p, world, gcomm, solver, mine, failedList, dp, epoch, mc, recoverIDs); err != nil {
				return err
			}
			rs.mergeStats(&st, failedList)
			gridLost = mc != nil && mc.abandoned[mine.ID]
		} else {
			detectOverhead += st.ListTime
			if cfg.Technique == CheckpointRestart && dp < cfg.Steps && !gridLost {
				stateBuf = pde.AppendState(solver, stateBuf[:0])
				ckSpan := cfg.Trace.BeginSpan(p.Now(), rank, "checkpoint", "write step %d", dp)
				err := rs.store.Write(p, mine.ID, gcomm.Rank(), dp, stateBuf)
				ckSpan.End(p.Now())
				if err != nil {
					return err
				}
				if rank == 0 {
					rs.mu.Lock()
					rs.res.CheckpointWrites++
					rs.mu.Unlock()
					cfg.Trace.Emit(p.Now(), rank, "checkpoint", "checkpoint written at step %d", dp)
					journal.Emit(p.Now(), rank, epoch, "checkpoint-commit", slog.Int("step", dp))
				}
			}
		}
	}

	// Simulated failures (the paper's Figs. 9/10 mode): whole grids are
	// assumed lost at the end, without killing processes. Spawn-only
	// (Config.Validate), so mc is always nil here.
	if !cfg.RealFailures && len(rs.simLost) > 0 {
		if err := rs.recoverData(p, world, gcomm, solver, mine, nil, cfg.Steps, epoch, nil, nil); err != nil {
			return err
		}
	}

	rs.mu.Lock()
	if detectOverhead > rs.res.DetectOverhead {
		rs.res.DetectOverhead = detectOverhead
	}
	rs.mu.Unlock()

	// Non-spawn modes report their final communicator shape: the current
	// root records the size, the surviving original ranks in communicator
	// order, the fallback count, the abandoned grids, and the failure
	// history — unioned across every event, unlike the spawn path's
	// first-event report from mergeStats.
	if mc != nil && world.Rank() == 0 {
		rs.mu.Lock()
		rs.res.FinalProcs = world.Size()
		rs.res.Survivors = append([]int(nil), mc.origOf...)
		rs.res.RepairFallbacks = mc.fallbacks
		rs.res.AbandonedGrids = mc.abandonedList()
		if fr := mc.failedRanks(); len(fr) > 0 {
			rs.res.FailedRanks = fr
			rs.res.LostGrids = rs.lostGridIDs(fr)
		}
		rs.mu.Unlock()
	}

	return rs.combinePhase(p, world, gcomm, solver, mine, rs.lostGridIDs(failedList), mc)
}

// syncRecoveryInfo broadcasts rank 0's failure information — the detection
// step and the failed-rank list — over the reconstructed communicator, so
// replacements learn where to rejoin and every survivor shares the global
// view. (Replacements cannot derive the step themselves once multiple
// failure events are allowed.)
func syncRecoveryInfo(world *mpi.Comm, step int, mine []int) (int, []int, error) {
	out, err := mpi.Bcast(world, 0, recoveryInfoBuf(world, step, mine))
	return parseRecoveryInfo(out, err)
}

// recoveryInfoBuf builds rank 0's payload for syncRecoveryInfo (nil
// elsewhere); parseRecoveryInfo decodes the broadcast result. Shared with the
// event path's fiber twin so both wire formats are one piece of code.
func recoveryInfoBuf(world *mpi.Comm, step int, mine []int) []int {
	if world.Rank() != 0 {
		return nil
	}
	return append([]int{step}, mine...)
}

func parseRecoveryInfo(out []int, err error) (int, []int, error) {
	if err != nil || len(out) < 1 {
		return 0, nil, fmt.Errorf("core: broadcast recovery info: %w", err)
	}
	return out[0], out[1:], nil
}

// lostGridIDs maps failed ranks (real mode) or the simulated loss list onto
// sub-grid IDs, ascending.
func (rs *runState) lostGridIDs(failedRanks []int) []int {
	if !rs.cfg.RealFailures {
		return rs.simLost
	}
	seen := map[int]bool{}
	var out []int
	for _, r := range failedRanks {
		g, err := gridOfRank(rs.grids, r)
		if err != nil {
			continue
		}
		if !seen[g.ID] {
			seen[g.ID] = true
			out = append(out, g.ID)
		}
	}
	sort.Ints(out)
	return out
}

// flushCheckpoints drains the store's write-behind queue at a
// failure-detection point, under a trace span, so every checkpoint written
// before the failure is durable before recovery reads it back. The barrier
// costs no virtual time — the write latency was charged at Write-call time
// — so sync and async runs stay byte-identical; the span is emitted in both
// modes for the same reason.
func (rs *runState) flushCheckpoints(p *mpi.Proc, rank, atStep int) {
	if rs.store == nil {
		return
	}
	sp := rs.cfg.Trace.BeginSpan(p.Now(), rank, "ckpt-flush", "drain write-behind queue at step %d", atStep)
	rs.store.Flush()
	sp.End(p.Now())
}

// agreeRestoreStep picks the newest checkpoint step that every member of
// the group offers as a candidate, or 0 when no common step exists (restart
// from the initial condition). Candidate lists are exchanged padded to the
// store's generation count so the collective's shape is independent of how
// much per-rank damage the header peeks found.
func agreeRestoreStep(gcomm *mpi.Comm, cand []int, width int) (int, error) {
	all, err := mpi.Allgather(gcomm, restoreStepBuf(cand, width))
	if err != nil {
		return 0, err
	}
	return pickRestoreStep(cand, all), nil
}

// restoreStepBuf pads the candidate list to the exchange width;
// pickRestoreStep selects the newest step every rank offered. Both are shared
// with the event path's fiber twin.
func restoreStepBuf(cand []int, width int) []int64 {
	if width < len(cand) {
		width = len(cand)
	}
	buf := make([]int64, width)
	for i, s := range cand {
		buf[i] = int64(s)
	}
	return buf
}

func pickRestoreStep(cand []int, all [][]int64) int {
	best := 0
	for _, s := range cand {
		if s <= best {
			continue
		}
		common := true
		for _, theirs := range all {
			found := false
			for _, v := range theirs {
				if int(v) == s {
					found = true
					break
				}
			}
			if !found {
				common = false
				break
			}
		}
		if common {
			best = s
		}
	}
	return best
}

// removeStep returns cand without step, preserving order.
func removeStep(cand []int, step int) []int {
	out := cand[:0]
	for _, s := range cand {
		if s != step {
			out = append(out, s)
		}
	}
	return out
}

// recoverData restores the data of lost sub-grids at the given step using
// the configured technique. Every process of the communicator calls it with
// the same arguments; only members of the lost grids and their recovery
// partners communicate. Under a non-spawn mode (mc != nil) the caller passes
// the broadcast-agreed active set (damaged minus abandoned) as recoverIDs
// and the sub-grid addressing is translated through the position map.
func (rs *runState) recoverData(p *mpi.Proc, world, gcomm *mpi.Comm, solver pde.Solver, mine SubGrid, failedRanks []int, atStep, epoch int, mc *modeCtx, recoverIDs []int) error {
	lost := rs.lostGridIDs(failedRanks)
	if mc != nil {
		lost = recoverIDs
	}
	if len(lost) == 0 {
		return nil
	}
	if world.Rank() == 0 {
		rs.cfg.Trace.Emit(p.Now(), 0, "recover-data", "%v recovery of sub-grids %v at step %d",
			rs.cfg.Technique, lost, atStep)
	}
	t0 := p.Now()
	sp := rs.cfg.Trace.BeginSpan(t0, traceRank(world, mc), "recover-data", "%v, sub-grids %v", rs.cfg.Technique, lost)
	defer func() {
		sp.End(p.Now())
		rs.mu.Lock()
		if d := p.Now() - t0; d > rs.res.DataRecoveryTime {
			rs.res.DataRecoveryTime = d
		}
		if len(rs.res.LostGrids) == 0 {
			rs.res.LostGrids = append([]int(nil), lost...)
		}
		rs.mu.Unlock()
	}()

	switch rs.cfg.Technique {
	case CheckpointRestart:
		if !containsInt(lost, mine.ID) {
			return nil
		}
		if mc != nil && mc.holed(mine) {
			// A shrunken group: the surviving checkpoints were written under
			// the pre-shrink group ranks and decomposition, so they cannot be
			// read back into the smaller solver. Recompute from the initial
			// condition — the full prefix is the measured price of losing a
			// rank without replacement.
			if gcomm.Rank() == 0 {
				rs.cfg.Journal.Emit(p.Now(), world.Rank(), epoch, "checkpoint-restore",
					slog.Int("grid", mine.ID), slog.Int("step", 0))
			}
			ic := grid.NewPooled(mine.Lv)
			ic.Fill(rs.prob.U0)
			rerr := solver.SetFromGrid(ic, 0)
			ic.Free()
			if rerr != nil {
				return rerr
			}
			if err := solver.Run(atStep - solver.Steps()); err != nil {
				return fmt.Errorf("core: CR recompute: %w", err)
			}
			return nil
		}
		// Restart from the newest checkpoint step the whole process group
		// can read. The recompute below runs the parallel solver, whose
		// halo exchanges require every member of the grid to execute the
		// same number of steps — a rank that independently fell back to an
		// older generation (its newer one corrupt or torn) would recompute
		// more steps than its neighbours and deadlock the group. So the
		// members negotiate: exchange candidate steps, pick the newest one
		// everybody offers, and verify the full CRC-checked read everywhere
		// before committing. A step whose payload turns out damaged on any
		// rank is discarded group-wide and the next older common step is
		// tried; when nothing usable survives on every rank, all restart
		// from the initial condition and recompute the full prefix.
		// Recovery never hard-fails on storage damage; that failure mode is
		// exactly what CR exists to absorb.
		cand := rs.store.CandidateSteps(mine.ID, gcomm.Rank())
		for {
			step, err := agreeRestoreStep(gcomm, cand, rs.store.Generations())
			if err != nil {
				return fmt.Errorf("core: CR restore: %w", err)
			}
			if step == 0 {
				if gcomm.Rank() == 0 {
					rs.cfg.Journal.Emit(p.Now(), world.Rank(), epoch, "checkpoint-restore",
						slog.Int("grid", mine.ID), slog.Int("step", 0))
				}
				ic := grid.NewPooled(mine.Lv)
				ic.Fill(rs.prob.U0)
				rerr := solver.SetFromGrid(ic, 0)
				ic.Free()
				if rerr != nil {
					return rerr
				}
				break
			}
			data, rerr := rs.store.ReadAt(p, mine.ID, gcomm.Rank(), step)
			ok := int64(1)
			if rerr != nil {
				if !errors.Is(rerr, checkpoint.ErrNoCheckpoint) {
					return fmt.Errorf("core: CR restore: %w", rerr)
				}
				ok = 0
			}
			if rerr == nil && mc != nil && len(data) != len(solver.State()) {
				// A checkpoint written under a different group shape (possible
				// once communicators shrink and regrow): treat it like damage
				// and let the group fall back to an older common step.
				ok = 0
			}
			allOK, aerr := mpi.Allreduce(gcomm, []int64{ok}, mpi.MinOp)
			if aerr != nil {
				return fmt.Errorf("core: CR restore: %w", aerr)
			}
			if allOK[0] == 1 {
				if gcomm.Rank() == 0 {
					rs.cfg.Journal.Emit(p.Now(), world.Rank(), epoch, "checkpoint-restore",
						slog.Int("grid", mine.ID), slog.Int("step", step))
				}
				if err := solver.Restore(step, data); err != nil {
					return err
				}
				break
			}
			// The full read exposed damage the header peek missed on at
			// least one rank: drop the step everywhere and renegotiate.
			if gcomm.Rank() == 0 {
				rs.cfg.Journal.Emit(p.Now(), world.Rank(), epoch, "checkpoint-fallback",
					slog.Int("grid", mine.ID), slog.Int("step", step))
			}
			cand = removeStep(cand, step)
		}
		if err := solver.Run(atStep - solver.Steps()); err != nil {
			return fmt.Errorf("core: CR recompute: %w", err)
		}
		return nil

	case ResamplingCopying:
		for _, lg := range lost {
			lostGrid := rs.grids[lg]
			src, resample, err := recoveryPartner(rs.grids, lostGrid)
			if err != nil {
				return err
			}
			if containsInt(lost, src.ID) {
				return fmt.Errorf("core: RC cannot recover grid %d: partner %d also lost", lg, src.ID)
			}
			// World addresses of the two group roots. With the original
			// numbering intact these are the grids' first ranks; under a
			// non-spawn mode a group's root is its lowest SURVIVING original
			// rank (Split orders by original rank), translated to its current
			// communicator position.
			srcRoot, dstRoot := src.FirstRank, lostGrid.FirstRank
			if mc != nil {
				if mc.abandoned[src.ID] || mc.holed(src) {
					return fmt.Errorf("core: RC cannot recover grid %d: partner %d unusable after shrink", lg, src.ID)
				}
				srcRoot = mc.commRankOf(mc.liveRootOf(src))
				dstRoot = mc.commRankOf(mc.liveRootOf(lostGrid))
				if srcRoot < 0 || dstRoot < 0 {
					return fmt.Errorf("core: RC recovery of grid %d: no surviving group root", lg)
				}
			}
			if mine.ID == src.ID {
				g, err := solver.Gather(0)
				if err != nil {
					return err
				}
				if gcomm.Rank() == 0 {
					send := g
					if resample {
						// mpi.Send copies eagerly, so the pooled
						// restriction can be freed right after.
						send = grid.NewPooled(lostGrid.Lv)
						if err := grid.RestrictInto(g, send); err != nil {
							send.Free()
							return err
						}
					}
					err := mpi.Send(world, dstRoot, tagRecoverBase+lg, send.V)
					if resample {
						send.Free()
					}
					if err != nil {
						return err
					}
				}
			}
			if mine.ID == lg {
				var vals []float64
				if gcomm.Rank() == 0 {
					var err error
					vals, _, err = mpi.Recv[float64](world, srcRoot, tagRecoverBase+lg)
					if err != nil {
						return err
					}
				}
				vals, err := mpi.Bcast(gcomm, 0, vals)
				if err != nil {
					return err
				}
				g, err := grid.FromValues(lostGrid.Lv, vals)
				if err != nil {
					return fmt.Errorf("core: RC transfer: %w", err)
				}
				err = solver.SetFromGrid(g, atStep)
				mpi.ReleaseBuf(vals) // transport-owned (Recv at the group root, Bcast below it)
				if err != nil {
					return err
				}
			}
		}
		return nil

	case AlternateCombination:
		// No data movement: the combination-phase coefficients are
		// recomputed over the survivors (timed there as the recovery
		// cost); lost grids simply do not contribute.
		return nil
	}
	return fmt.Errorf("core: unknown technique %v", rs.cfg.Technique)
}

// computeScheme returns the combination scheme for the run: the classic
// +1/-1 coefficients, or — under Alternate Combination with losses — the
// recovered GCP coefficients over the surviving grids. Every rank computes
// it deterministically; timeIt (rank 0) records the coefficient
// recomputation as the AC data-recovery cost. Non-spawn modes (mc != nil)
// combine over whatever survived abandonment, whichever the technique: the
// hole-tolerant survivor scheme replaces the classic coefficients.
func (rs *runState) computeScheme(p *mpi.Proc, lost []int, timeIt bool, mc *modeCtx) (combine.Scheme, error) {
	if mc != nil {
		if len(mc.abandoned) == 0 {
			return rs.cfg.Layout.Classic(), nil
		}
		tRec := p.Now()
		scheme, err := rs.survivorScheme(mc)
		if err != nil {
			return nil, err
		}
		if timeIt && rs.cfg.Technique == AlternateCombination && mc.mode != recovery.ModeNoRepair {
			// AC charges the coefficient recomputation as its data-recovery
			// cost, as in spawn mode; no-repair by definition recovers
			// nothing, so its data-recovery time stays zero.
			p.Compute(float64(len(rs.grids)*64) * 1e-7)
			rs.mu.Lock()
			if d := p.Now() - tRec; d > rs.res.DataRecoveryTime {
				rs.res.DataRecoveryTime = d
			}
			rs.mu.Unlock()
		}
		return scheme, nil
	}
	if rs.cfg.Technique != AlternateCombination || len(lost) == 0 {
		return rs.cfg.Layout.Classic(), nil
	}
	lostSet := map[int]bool{}
	for _, id := range lost {
		lostSet[id] = true
	}
	tRec := p.Now()
	held := make([]grid.Level, 0, len(rs.grids))
	lostLvs := ftcomb.NewSet()
	for _, sg := range rs.grids {
		held = append(held, sg.Lv)
		if lostSet[sg.ID] {
			lostLvs[sg.Lv] = true
		}
	}
	scheme, err := ftcomb.RecoverScheme(held, lostLvs)
	if err != nil {
		return nil, fmt.Errorf("core: alternate combination: %w", err)
	}
	if timeIt {
		p.Compute(float64(len(rs.grids)*64) * 1e-7) // coefficient computation cost
		rs.mu.Lock()
		if d := p.Now() - tRec; d > rs.res.DataRecoveryTime {
			rs.res.DataRecoveryTime = d
		}
		rs.mu.Unlock()
	}
	return scheme, nil
}

// combinePhase combines the sub-grid solutions onto the common grid and
// measures the l1 error at rank 0. The default is the paper's parallel
// gather-scatter: each group root accumulates its own coefficient-weighted
// contribution on the target grid and a single elementwise Reduce assembles
// the combined solution. Config.SerialCombine selects the naive
// ship-everything-to-rank-0 variant for the ablation benchmark.
func (rs *runState) combinePhase(p *mpi.Proc, world, gcomm *mpi.Comm, solver pde.Solver, mine SubGrid, lost []int, mc *modeCtx) error {
	sp := rs.cfg.Trace.BeginSpan(p.Now(), traceRank(world, mc), "combine", "")
	defer func() { sp.End(p.Now()) }()
	scheme, err := rs.computeScheme(p, lost, world.Rank() == 0, mc)
	if err != nil {
		return err
	}
	if rs.cfg.SerialCombine {
		return rs.combineSerial(p, world, gcomm, solver, mine, lost, scheme)
	}
	return rs.combineParallel(p, world, gcomm, solver, mine, scheme)
}

// combineParallel is the gather-scatter combination of Section II-A.
func (rs *runState) combineParallel(p *mpi.Proc, world, gcomm *mpi.Comm, solver pde.Solver, mine SubGrid, scheme combine.Scheme) error {
	g, err := solver.Gather(0)
	if err != nil {
		return fmt.Errorf("core: combine gather: %w", err)
	}
	coeff := scheme.Coeff(mine.Lv)
	contribute := gcomm.Rank() == 0 && mine.Role != RoleDuplicate && coeff != 0
	color := mpi.Undefined
	if contribute || world.Rank() == 0 {
		color = 0
	}
	roots, err := world.Split(color, mine.ID)
	if err != nil {
		return fmt.Errorf("core: combine split: %w", err)
	}
	if roots == nil {
		return nil
	}

	t0 := p.Now()
	target := grid.Level{I: rs.cfg.Layout.N, J: rs.cfg.Layout.N}
	oneShot := rs.cfg.ComputeScale * float64(rs.cfg.Steps) / nominalSteps
	partial := grid.NewPooled(target)
	if contribute {
		partial.AccumulateSampled(g, coeff)
		p.ComputeCells(target.Points(), oneShot)
	}
	total, err := mpi.ReduceSum(roots, 0, partial.V)
	partial.Free()
	if err != nil {
		return fmt.Errorf("core: combine reduce: %w", err)
	}
	if roots.Rank() != 0 {
		return nil
	}
	comb, err := grid.FromValues(target, total)
	if err != nil {
		return err
	}
	rs.recordCombined(p, comb, t0)
	mpi.ReleaseBuf(total) // Reduce's root result is a pooled transport buffer
	return nil
}

// combineSerial ships every sub-grid to rank 0, which combines alone.
func (rs *runState) combineSerial(p *mpi.Proc, world, gcomm *mpi.Comm, solver pde.Solver, mine SubGrid, lost []int, scheme combine.Scheme) error {
	g, err := solver.Gather(0)
	if err != nil {
		return fmt.Errorf("core: combine gather: %w", err)
	}
	if gcomm.Rank() == 0 && mine.ID != 0 {
		// The gathered grid is dead after this send: transfer the buffer to
		// the transport instead of having it copied.
		if err := mpi.SendOwned(world, 0, tagCombineBase+mine.ID, g.V); err != nil {
			return fmt.Errorf("core: combine send: %w", err)
		}
		g = nil
	}
	if world.Rank() != 0 {
		return nil
	}

	t0 := p.Now()
	lostSet := map[int]bool{}
	for _, id := range lost {
		lostSet[id] = true
	}
	solutions := make(map[grid.Level]*grid.Grid)
	for _, sg := range rs.grids {
		var vals []float64
		owned := false // vals came from the transport and must be released
		if sg.ID == 0 {
			vals = g.V
		} else {
			var err error
			vals, _, err = mpi.Recv[float64](world, sg.FirstRank, tagCombineBase+sg.ID)
			if err != nil {
				return fmt.Errorf("core: combine recv grid %d: %w", sg.ID, err)
			}
			owned = true
		}
		skip := sg.Role == RoleDuplicate ||
			// Duplicates exist purely as a backup of the diagonal grids; the
			// combination uses the (possibly recovered) primaries. Under AC
			// the lost grids hold no usable data; the recovered scheme avoids
			// their levels.
			(rs.cfg.Technique == AlternateCombination && lostSet[sg.ID])
		if !skip {
			gg := grid.NewPooled(sg.Lv)
			copy(gg.V, vals)
			solutions[sg.Lv] = gg
		}
		if owned {
			mpi.ReleaseBuf(vals)
		}
	}

	target := grid.Level{I: rs.cfg.Layout.N, J: rs.cfg.Layout.N}
	comb := grid.NewPooled(target)
	err = combine.EvaluateInto(comb, scheme, solutions)
	for _, gg := range solutions {
		gg.Free()
	}
	if err != nil {
		comb.Free()
		return fmt.Errorf("core: combine: %w", err)
	}
	oneShot := rs.cfg.ComputeScale * float64(rs.cfg.Steps) / nominalSteps
	p.ComputeCells(target.Points()*len(scheme), oneShot)
	rs.recordCombined(p, comb, t0)
	comb.Free()
	return nil
}

// recordCombined measures the combined solution's error and stores the
// combine-phase metrics (rank 0 only).
func (rs *runState) recordCombined(p *mpi.Proc, comb *grid.Grid, t0 float64) {
	finalT := float64(rs.cfg.Steps) * rs.dt
	l1 := comb.L1Error(rs.prob.Exact(finalT))
	rs.mu.Lock()
	rs.res.L1Error = l1
	rs.res.CombineTime = p.Now() - t0
	rs.mu.Unlock()
	rs.cfg.Trace.Emit(p.Now(), 0, "combine", "combined solution assembled, l1 error %.4e", l1)
}

// mergeStats folds one rank's recovery statistics into the shared result
// (component times keep the maximum over ranks).
func (rs *runState) mergeStats(st *recovery.Stats, failedList []int) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	res := &rs.res
	maxf := func(dst *float64, v float64) {
		if v > *dst {
			*dst = v
		}
	}
	// ListTime is merged with the MINIMUM over ranks: ranks that reach the
	// detection agree early spend virtual time waiting for stragglers (an
	// arrival skew, not an operation cost); the last arriver's window is
	// the pure failure-information time of Fig. 8a.
	if st.ListTime > 0 && (res.ListTime == 0 || st.ListTime < res.ListTime) {
		res.ListTime = st.ListTime
	}
	maxf(&res.ReconstructTime, st.ReconstructTime)
	maxf(&res.ShrinkTime, st.ShrinkTime)
	maxf(&res.SpawnTime, st.SpawnTime)
	maxf(&res.MergeTime, st.MergeTime)
	maxf(&res.AgreeTime, st.AgreeTime)
	maxf(&res.SplitTime, st.SplitTime)
	if len(res.FailedRanks) == 0 && len(failedList) > 0 {
		res.FailedRanks = append([]int(nil), failedList...)
	}
	if len(res.LostGrids) == 0 {
		res.LostGrids = rs.lostGridIDs(failedList)
	}
}

// decompDims picks a balanced 2D process grid for a sub-grid, giving the
// larger factor to the longer grid dimension (and clamping so no dimension
// gets more processes than cells).
func decompDims(nprocs int, lv grid.Level) (px, py int) {
	dims := mpi.DimsCreate(nprocs, 2) // largest first
	nx, ny := 1<<lv.I, 1<<lv.J
	if ny >= nx {
		py, px = dims[0], dims[1]
	} else {
		px, py = dims[0], dims[1]
	}
	// Fall back to a 1D-like split if a dimension is oversubscribed.
	if px > nx || py > ny {
		if ny >= nprocs {
			return 1, nprocs
		}
		return nprocs, 1
	}
	return px, py
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
