package core

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"ftsg/internal/telemetry"
	"ftsg/internal/trace"
)

// journalBytes runs cfg with a journal attached and returns the canonical
// (wall-clock-free) JSONL rendering.
func journalBytes(t *testing.T, cfg Config) []byte {
	t.Helper()
	j := telemetry.NewJournal()
	cfg.Journal = j
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := j.WriteJSONL(&b, false); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestJournalDeterminism pins the journal's determinism contract: the
// canonical rendering — virtual timestamps, ranks, epochs, event kinds and
// attributes — is byte-identical at GOMAXPROCS 1 and NumCPU. This is the
// telemetry extension of the determinism campaign.
func TestJournalDeterminism(t *testing.T) {
	cfg := fastCfg(CheckpointRestart)
	cfg.NumFailures = 2
	cfg.RealFailures = true
	cfg.Seed = 17

	prev := runtime.GOMAXPROCS(1)
	serial := journalBytes(t, cfg)
	runtime.GOMAXPROCS(runtime.NumCPU())
	parallel := journalBytes(t, cfg)
	runtime.GOMAXPROCS(prev)

	if len(serial) == 0 {
		t.Fatal("journal is empty for a run with two real failures")
	}
	if !bytes.Equal(serial, parallel) {
		t.Errorf("journal differs between GOMAXPROCS 1 and %d:\n--- serial ---\n%s--- parallel ---\n%s",
			runtime.NumCPU(), serial, parallel)
	}
}

// TestJournalEventSchema checks a failing CR run emits the full event
// vocabulary with the documented fields.
func TestJournalEventSchema(t *testing.T) {
	cfg := fastCfg(CheckpointRestart)
	cfg.NumFailures = 2
	cfg.RealFailures = true
	cfg.Seed = 17
	out := journalBytes(t, cfg)

	kinds := map[string]int{}
	for _, line := range bytes.Split(bytes.TrimSpace(out), []byte("\n")) {
		var e map[string]any
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("journal line is not JSON: %v\n%s", err, line)
		}
		kind, _ := e["msg"].(string)
		kinds[kind]++
		for _, field := range []string{"vt", "rank", "epoch"} {
			if _, ok := e[field]; !ok {
				t.Errorf("event %q missing %q: %s", kind, field, line)
			}
		}
		if _, ok := e["wall"]; ok {
			t.Errorf("canonical rendering leaked a wall timestamp: %s", line)
		}
	}
	for _, want := range []string{"fault-inject", "failure-detected", "repair-phase", "checkpoint-commit", "checkpoint-restore", "respawn"} {
		if kinds[want] == 0 {
			t.Errorf("no %q events in a failing CR run; got %v", want, kinds)
		}
	}
	if kinds["repair-phase"]%6 != 0 {
		t.Errorf("repair-phase events %d not a multiple of the 6 phases", kinds["repair-phase"])
	}
}

// TestFlightDumpHasAllRepairPhases runs a two-failure recovery under the
// default always-on flight recorder and checks the retained window covers
// every protocol phase — the post-mortem the acceptance criteria name.
func TestFlightDumpHasAllRepairPhases(t *testing.T) {
	rec := trace.NewFlight(0)
	cfg := fastCfg(ResamplingCopying)
	cfg.NumFailures = 2
	cfg.RealFailures = true
	cfg.Seed = 23
	cfg.Trace = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, s := range rec.Spans() {
		have[s.Phase] = true
	}
	for _, phase := range []string{"detect", "revoke", "shrink", "spawn", "merge", "agree", "split", "recover-data"} {
		if !have[phase] {
			t.Errorf("flight recorder retained no %q span; phases seen: %v", phase, have)
		}
	}
	var b strings.Builder
	if err := rec.ExportChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("flight export is not valid Chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("flight export has no events")
	}
}

// TestFlightAutoDumpOnAbort checks the abort path writes the flight
// recorder to disk exactly once and that the dump is a loadable trace.
func TestFlightAutoDumpOnAbort(t *testing.T) {
	dir := t.TempDir()
	rec := trace.NewFlight(8)
	rec.BeginSpan(1, 0, "solve", "about to die").End(2)
	rs := &runState{cfg: Config{Trace: rec, FlightDumpDir: dir}}

	rs.dumpFlight("rank 3 abort")
	rs.dumpFlight("watchdog stall") // second trigger must be a no-op

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("abort dumped %d files, want exactly 1", len(entries))
	}
	raw, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(raw) || !bytes.Contains(raw, []byte("solve")) {
		t.Errorf("dump is not a valid trace containing the span: %s", raw)
	}
	if !strings.HasPrefix(entries[0].Name(), "ftsg-flight-") {
		t.Errorf("dump filename %q missing the ftsg-flight- prefix", entries[0].Name())
	}
}
