package core

import (
	"fmt"
	"sort"

	"ftsg/internal/combine"
	"ftsg/internal/ftcomb"
	"ftsg/internal/grid"
	"ftsg/internal/mpi"
	"ftsg/internal/recovery"
)

// modeCtx is one rank's view of a non-spawn recovery mode's run state: the
// mapping from current communicator positions to original ranks, the
// original ranks that left permanent holes (shrunk out, never replaced), and
// the sub-grids abandoned as a consequence. Survivors evolve it locally from
// each repair's results and verify it against rank 0's broadcast; claimed
// spares adopt the broadcast wholesale. It is nil for spawn-mode runs, whose
// code paths are untouched.
type modeCtx struct {
	mode      recovery.Mode
	nprocs    int          // original communicator size
	origOf    []int        // original rank behind each current comm position
	dead      map[int]bool // original ranks shrunk out without replacement
	failed    map[int]bool // original ranks that failed (replaced or not)
	abandoned map[int]bool // sub-grid IDs abandoned (no data, coeff redistributed)
	fallbacks int          // substitute rounds degraded to shrink (spares exhausted)
}

func newModeCtx(mode recovery.Mode, nprocs int) *modeCtx {
	origOf := make([]int, nprocs)
	for i := range origOf {
		origOf[i] = i
	}
	return &modeCtx{
		mode:      mode,
		nprocs:    nprocs,
		origOf:    origOf,
		dead:      make(map[int]bool),
		failed:    make(map[int]bool),
		abandoned: make(map[int]bool),
	}
}

// traceRank returns the stable timeline identity of the calling process:
// the comm rank under spawn (positions never move), the original rank under
// a non-spawn mode. Shrink renumbers comm positions mid-run, so labeling
// spans with world.Rank() would put two different processes on the same
// trace track — and their same-instant spans would interleave by real
// scheduling order, breaking byte-identical replay.
func traceRank(world *mpi.Comm, mc *modeCtx) int {
	if mc != nil {
		return mc.origOf[world.Rank()]
	}
	return world.Rank()
}

// commRankOf returns the current communicator rank of an original rank, or
// -1 when it has been shrunk out.
func (mc *modeCtx) commRankOf(orig int) int {
	for i, o := range mc.origOf {
		if o == orig {
			return i
		}
	}
	return -1
}

// holed reports whether the grid has at least one permanently missing
// member.
func (mc *modeCtx) holed(g SubGrid) bool {
	for r := g.FirstRank; r < g.FirstRank+g.Procs; r++ {
		if mc.dead[r] {
			return true
		}
	}
	return false
}

// adopt installs rank 0's broadcast state (claimed spares joining mid-run
// have no history of their own): the position mapping, the abandoned set,
// the current event's failed ranks, and the hole set derived as the
// complement of the mapping (a hole implies a failure, so the holes fold
// into the failure history too).
func (mc *modeCtx) adopt(origOf, abandoned, failed []int) {
	mc.origOf = append([]int(nil), origOf...)
	present := make(map[int]bool, len(origOf))
	for _, o := range origOf {
		present[o] = true
	}
	for r := 0; r < mc.nprocs; r++ {
		if !present[r] {
			mc.dead[r] = true
			mc.failed[r] = true
		}
	}
	for _, f := range failed {
		mc.failed[f] = true
	}
	for _, id := range abandoned {
		mc.abandoned[id] = true
	}
}

// failedRanks returns every original rank that has failed so far —
// replaced or not — ascending. Unlike the spawn path's first-event report,
// the mode context unions across failure events.
func (mc *modeCtx) failedRanks() []int {
	out := make([]int, 0, len(mc.failed))
	for r := range mc.failed {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// abandonedList returns the abandoned grid IDs, ascending.
func (mc *modeCtx) abandonedList() []int {
	out := make([]int, 0, len(mc.abandoned))
	for id := range mc.abandoned {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// applyEvent folds one repair event into the context: origOf is the
// post-repair position mapping, failedList the original ranks lost in the
// event (both from recovery.ReconstructMode). It updates the hole and
// abandoned sets and returns the sub-grid IDs to actively recover this
// event. Every survivor derives identical results from identical inputs;
// rank 0's broadcast lets the others verify.
func (rs *runState) applyEvent(mc *modeCtx, origOf, failedList []int) []int {
	mc.origOf = append(mc.origOf[:0], origOf...)
	present := make(map[int]bool, len(origOf))
	for _, o := range origOf {
		present[o] = true
	}
	for _, f := range failedList {
		mc.failed[f] = true
		if !present[f] {
			mc.dead[f] = true
		}
	}
	damaged := rs.lostGridIDs(failedList)
	var recoverIDs []int
	for _, id := range damaged {
		if mc.abandoned[id] {
			continue
		}
		if rs.abandonGrid(mc, rs.grids[id]) {
			mc.abandoned[id] = true
			continue
		}
		recoverIDs = append(recoverIDs, id)
	}
	sort.Ints(recoverIDs)
	return recoverIDs
}

// activeRecoverIDs returns the damaged grids actively recovered in the
// event that lost failedList — the damaged set minus the abandoned set,
// which is exactly what applyEvent returns for survivors. Attached children
// receive the abandoned set by broadcast instead of deriving it, so they
// recompute the same list here. Nil-safe: spawn mode recovers per
// lostGridIDs and passes none.
func (rs *runState) activeRecoverIDs(mc *modeCtx, failedList []int) []int {
	if mc == nil {
		return nil
	}
	var out []int
	for _, id := range rs.lostGridIDs(failedList) {
		if !mc.abandoned[id] {
			out = append(out, id)
		}
	}
	return out
}

// abandonGrid decides whether a grid damaged by the current event is
// abandoned or recovered. No-repair never recovers, and Alternate
// Combination's only recovery mechanism IS abandonment (coefficients are
// redistributed over the survivors), so both abandon every damaged grid.
// For CR and RC a grid with no holes — every lost member was substituted —
// recovers exactly like spawn; a grid whose members are all gone has nobody
// left to hold data. Otherwise the technique decides what a shrunken group
// can rebuild: CR recomputes from the initial condition, RC copies from its
// partner if that partner is still usable.
func (rs *runState) abandonGrid(mc *modeCtx, g SubGrid) bool {
	if mc.mode == recovery.ModeNoRepair {
		return true
	}
	if rs.cfg.Technique == AlternateCombination {
		return true
	}
	if !mc.holed(g) {
		return false
	}
	allDead := true
	for r := g.FirstRank; r < g.FirstRank+g.Procs; r++ {
		if !mc.dead[r] {
			allDead = false
			break
		}
	}
	if allDead {
		return true
	}
	switch rs.cfg.Technique {
	case CheckpointRestart:
		return false
	default: // ResamplingCopying
		if g.Role == RoleDuplicate {
			// Duplicates exist only as copy sources; a holed duplicate is
			// written off (and recorded, so a later loss of its primary is
			// not "recovered" from a grid with holes).
			return true
		}
		p, _, err := recoveryPartner(rs.grids, g)
		if err != nil {
			return true
		}
		return mc.abandoned[p.ID] || mc.holed(p)
	}
}

// liveRootOf returns the lowest surviving original rank of the grid — the
// rank that holds position 0 of the grid's group communicator after every
// shrink (Split orders by original rank) — or -1 when none survives.
func (mc *modeCtx) liveRootOf(g SubGrid) int {
	for r := g.FirstRank; r < g.FirstRank+g.Procs; r++ {
		if !mc.dead[r] {
			return r
		}
	}
	return -1
}

// survivorScheme returns the combination scheme over the non-abandoned
// grids: the classic coefficients when nothing is abandoned, otherwise the
// hole-tolerant scheme over the surviving levels (duplicates never carry
// coefficients and are excluded from both sides).
func (rs *runState) survivorScheme(mc *modeCtx) (combine.Scheme, error) {
	if len(mc.abandoned) == 0 {
		return rs.cfg.Layout.Classic(), nil
	}
	held := make([]grid.Level, 0, len(rs.grids))
	lost := ftcomb.NewSet()
	for _, sg := range rs.grids {
		if sg.Role == RoleDuplicate {
			continue
		}
		held = append(held, sg.Lv)
		if mc.abandoned[sg.ID] {
			lost[sg.Lv] = true
		}
	}
	scheme, err := ftcomb.SurvivorScheme(held, lost)
	if err != nil {
		return nil, fmt.Errorf("core: %v survivor scheme: %w", rs.cfg.RecoveryMode, err)
	}
	return scheme, nil
}

// syncRecoveryInfoMode is the non-spawn analogue of syncRecoveryInfo: rank 0
// broadcasts the detection step, the event's failed original ranks, the
// cumulative abandoned grid set, and the full position-to-original-rank
// mapping, so claimed spares can reconstruct the run state and every
// survivor can verify its locally derived copy. The spawn-mode broadcast
// format is untouched.
func syncRecoveryInfoMode(world *mpi.Comm, step int, failed, abandoned, origOf []int) (int, []int, []int, []int, error) {
	out, err := mpi.Bcast(world, 0, recoveryInfoModeBuf(world, step, failed, abandoned, origOf))
	return parseRecoveryInfoMode(world, out, err)
}

// recoveryInfoModeBuf builds rank 0's payload for syncRecoveryInfoMode (nil
// elsewhere); parseRecoveryInfoMode decodes the broadcast result. Shared with
// the event path's fiber twin so both wire formats are one piece of code.
func recoveryInfoModeBuf(world *mpi.Comm, step int, failed, abandoned, origOf []int) []int {
	if world.Rank() != 0 {
		return nil
	}
	var buf []int
	buf = append(buf, step, len(failed))
	buf = append(buf, failed...)
	buf = append(buf, len(abandoned))
	buf = append(buf, abandoned...)
	buf = append(buf, origOf...)
	return buf
}

func parseRecoveryInfoMode(world *mpi.Comm, out []int, err error) (int, []int, []int, []int, error) {
	var failed, abandoned, origOf []int
	if err != nil || len(out) < 2 {
		return 0, nil, nil, nil, fmt.Errorf("core: broadcast recovery info: %w", err)
	}
	nf := out[1]
	if len(out) < 3+nf {
		return 0, nil, nil, nil, fmt.Errorf("core: malformed recovery info (%d ints, %d failed)", len(out), nf)
	}
	failed = out[2 : 2+nf]
	na := out[2+nf]
	if len(out) < 3+nf+na+world.Size() {
		return 0, nil, nil, nil, fmt.Errorf("core: malformed recovery info (%d ints, %d failed, %d abandoned, size %d)",
			len(out), nf, na, world.Size())
	}
	abandoned = out[3+nf : 3+nf+na]
	origOf = out[3+nf+na:]
	if len(origOf) != world.Size() {
		return 0, nil, nil, nil, fmt.Errorf("core: recovery info maps %d positions for a size-%d communicator",
			len(origOf), world.Size())
	}
	return out[0], failed, abandoned, origOf, nil
}
