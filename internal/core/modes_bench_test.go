package core

import (
	"testing"

	"ftsg/internal/faultgen"
	"ftsg/internal/recovery"
)

// BenchmarkRepairMode measures one full CR run with a mid-run two-process
// failure under each recovery mode, so the per-mode cost of the repair
// protocol (spawn round-trips vs shrink-only vs spare claiming vs the
// no-repair baseline) shows up side by side in the snapshot.
func BenchmarkRepairMode(b *testing.B) {
	for _, mode := range recovery.Modes {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := fastCfg(CheckpointRestart)
			cfg.RealFailures = true
			cfg.FailSchedule = []faultgen.Event{{Step: 24, Failures: 2}}
			cfg.RecoveryMode = mode
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.FailedRanks) != 2 {
					b.Fatalf("%s: failed ranks %v, want 2", mode, res.FailedRanks)
				}
			}
		})
	}
}
