package core

import (
	"bytes"
	"testing"

	"ftsg/internal/metrics"
	"ftsg/internal/trace"
)

// TestTelemetryPopulatesResult: with Telemetry on, the Result carries MPI
// traffic totals (and, for CR, checkpoint I/O volume); with it off they
// stay zero.
func TestTelemetryPopulatesResult(t *testing.T) {
	cfg := fastCfg(CheckpointRestart)
	cfg.Telemetry = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MPIMessages <= 0 || res.MPIBytes <= 0 {
		t.Errorf("telemetry on: messages=%d bytes=%d, want both > 0",
			res.MPIMessages, res.MPIBytes)
	}
	if res.CheckpointWrites > 0 && res.CheckpointBytesOut <= 0 {
		t.Errorf("%d checkpoint writes but 0 bytes written", res.CheckpointWrites)
	}

	off, err := Run(fastCfg(CheckpointRestart))
	if err != nil {
		t.Fatal(err)
	}
	if off.MPIMessages != 0 || off.MPIBytes != 0 || off.CheckpointBytesOut != 0 {
		t.Errorf("telemetry off: nonzero counters %d/%d/%d",
			off.MPIMessages, off.MPIBytes, off.CheckpointBytesOut)
	}
}

// TestSharedRegistryAggregates: an explicit Config.Metrics registry keeps
// accumulating across runs.
func TestSharedRegistryAggregates(t *testing.T) {
	reg := metrics.New()
	cfg := fastCfg(AlternateCombination)
	cfg.Metrics = reg
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r2.MPIMessages != 2*r1.MPIMessages {
		t.Errorf("shared registry: second run reports %d messages, want %d",
			r2.MPIMessages, 2*r1.MPIMessages)
	}
	if got := reg.Counter("mpi.sent.messages").Value(); got != r2.MPIMessages {
		t.Errorf("registry holds %d messages, result says %d", got, r2.MPIMessages)
	}
}

// TestRecoveryTimelineSpans: a fault-injected run must leave a closed span
// for every protocol phase on the trace, with none left open.
func TestRecoveryTimelineSpans(t *testing.T) {
	rec := trace.New(nil)
	cfg := fastCfg(CheckpointRestart)
	cfg.NumFailures = 1
	cfg.RealFailures = true
	cfg.Seed = 5
	cfg.Trace = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{
		"detect", "revoke", "shrink", "spawn", "merge", "agree", "split",
		"recover-data", "combine", "solve", "checkpoint",
	} {
		if rec.SpanCount(phase) == 0 {
			t.Errorf("no %q span recorded", phase)
		}
	}
	// Killed ranks legitimately leave their current span open (rendered as
	// a "B" event running to the end of the trace); every survivor's span
	// must be closed.
	failed := map[int]bool{}
	for _, r := range res.FailedRanks {
		failed[r] = true
	}
	for _, s := range rec.OpenSpans() {
		if !failed[s.Rank] {
			t.Errorf("span left open on surviving rank: %v", s)
		}
	}
}

// TestMetricsSummaryDeterministic: the full instrumentation summary of a
// fault-injected run — every counter, histogram and per-rank vector — is a
// function of the configuration alone, not of goroutine scheduling. This is
// the strongest determinism probe we have: a single stray message anywhere
// in the runtime shows up as a diff.
func TestMetricsSummaryDeterministic(t *testing.T) {
	run := func() string {
		reg := metrics.New()
		cfg := Config{Technique: ResamplingCopying, DiagProcs: 2, Steps: 16,
			NumFailures: 1, RealFailures: true, Seed: 41, Metrics: reg}
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		reg.WriteSummary(&b)
		return b.String()
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); got != first {
			t.Fatalf("summary diverged on repeat %d:\n--- first\n%s\n--- got\n%s", i, first, got)
		}
	}
}
