// Package core implements the paper's application: a 2D advection solver
// parallelised with the sparse grid combination technique that survives
// real process failures via the ULFM recovery protocol, with three
// selectable data-recovery techniques — Checkpoint/Restart, Resampling and
// Copying, and Alternate Combination.
package core

import (
	"fmt"
	"math"

	"ftsg/internal/checkpoint"
	"ftsg/internal/combine"
	"ftsg/internal/faultgen"
	"ftsg/internal/grid"
	"ftsg/internal/metrics"
	"ftsg/internal/mpi"
	"ftsg/internal/pde"
	"ftsg/internal/recovery"
	"ftsg/internal/telemetry"
	"ftsg/internal/trace"
	"ftsg/internal/vtime"
)

// Technique selects the data-recovery method for lost sub-grid data.
type Technique int

const (
	// CheckpointRestart (CR) writes periodic disk checkpoints and, after a
	// failure, restarts the lost grid from the last checkpoint and
	// recomputes.
	CheckpointRestart Technique = iota
	// ResamplingCopying (RC) duplicates every diagonal sub-grid; a lost
	// diagonal grid (or duplicate) is copied from its twin and a lost
	// lower-diagonal grid is resampled from the finer diagonal grid above
	// it.
	ResamplingCopying
	// AlternateCombination (AC) holds two extra layers of coarser
	// sub-grids and, on loss, derives new combination coefficients over
	// the survivors.
	AlternateCombination
)

func (t Technique) String() string {
	switch t {
	case CheckpointRestart:
		return "CR"
	case ResamplingCopying:
		return "RC"
	case AlternateCombination:
		return "AC"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// GridRole classifies a sub-grid within the layout of the paper's Fig. 1.
type GridRole int

const (
	RoleDiagonal GridRole = iota
	RoleLowerDiagonal
	RoleDuplicate
	RoleExtraLayer1
	RoleExtraLayer2
)

func (r GridRole) String() string {
	switch r {
	case RoleDiagonal:
		return "diagonal"
	case RoleLowerDiagonal:
		return "lower-diagonal"
	case RoleDuplicate:
		return "duplicate"
	case RoleExtraLayer1:
		return "extra-layer-1"
	case RoleExtraLayer2:
		return "extra-layer-2"
	default:
		return fmt.Sprintf("GridRole(%d)", int(r))
	}
}

// SubGrid is one sub-grid of the application with its process group.
type SubGrid struct {
	ID        int
	Lv        grid.Level
	Role      GridRole
	Procs     int
	FirstRank int
}

// Config describes one run of the fault-tolerant application.
type Config struct {
	// Layout fixes the combination geometry (full grid exponent N, level L).
	Layout combine.Layout
	// Technique selects the data-recovery method.
	Technique Technique
	// Machine selects the cost-model profile (nil = OPL).
	Machine *vtime.Machine
	// DiagProcs is the process count of each diagonal (and duplicate)
	// sub-grid; lower-diagonal grids get half, extra layers a quarter and
	// an eighth (floored at 1). The paper's Fig. 8/11 core counts
	// {19, 38, 76, 152, 304} correspond to DiagProcs {2, 4, 8, 16, 32}
	// with the RC grid set.
	DiagProcs int
	// Steps is the number of solver timesteps.
	Steps int
	// ComputeScale multiplies the virtual per-cell compute charge, mapping
	// a laptop-sized run onto the paper's nominal problem (n = 13, 2^13
	// steps). The default 32768 makes N=8/256-step runs charge like the
	// nominal problem.
	ComputeScale float64
	// Velocity is the advection velocity (ax, ay).
	Velocity [2]float64
	// CFL is the Courant number used to size the shared timestep.
	CFL float64
	// NumFailures processes are aborted together at FailStep
	// (RealFailures), or NumFailures whole grids are marked lost at the
	// end (simulated failures, the mode of the paper's Figs. 9 and 10).
	NumFailures int
	FailStep    int
	// RealFailures selects real process kills plus communicator
	// reconstruction; false selects the simulated-loss mode.
	RealFailures bool
	// RecoveryMode selects how a broken communicator is repaired: spawn
	// (the paper's protocol — re-spawn to full size; the default), shrink
	// (continue with fewer ranks, redistributing the dead sub-grids through
	// the hole-tolerant combination coefficients), substitute (restore full
	// size from SpareRanks pre-allocated spare processes), or norepair
	// (shrink the communicator but recover no data — the degraded
	// baseline). Non-spawn modes require RealFailures when failures are
	// configured; the simulated-loss mode of Figs. 9/10 is spawn-only.
	RecoveryMode recovery.Mode
	// SpareRanks is the size of the pre-allocated spare-process pool of the
	// substitute mode (0 under substitute defaults to 8; ignored by the
	// other modes). The spares are parked on the spare hosts at startup and
	// consumed by repairs; when exhausted, repairs fall back to shrink.
	SpareRanks int
	// Seed drives victim selection.
	Seed int64
	// FailSchedule injects several failure events at increasing steps,
	// generalising the single NumFailures/FailStep event. Requires
	// RealFailures; each event draws fresh victims under the same
	// constraints (rank 0 protected, RC pairs not hit simultaneously).
	FailSchedule []faultgen.Event
	// NodeFailure, with RealFailures, kills every process of one randomly
	// chosen host at FailStep instead of NumFailures individual processes
	// — the node-failure scenario of the paper's future work. Requires
	// SpareNodes >= 1 so the replacements have somewhere to go.
	NodeFailure bool
	// OpFailures kills additional victims at MPI-operation granularity:
	// victim i dies at the entry of its AfterOps-th operation (inside a
	// barrier, halo exchange, gather, ...), or — with DuringRecovery — at
	// the AfterOps-th operation counted from its shrink call, landing the
	// death inside an in-progress repair. Victims are drawn from Seed
	// (decorrelated from the step-schedule victims, which are excluded) and
	// honour the same constraints (rank 0 protected, RC conflict pairs
	// avoided jointly with the step plan's victims). Requires RealFailures.
	OpFailures []faultgen.OpEvent
	// Watchdog, when enabled (Timeout > 0), monitors transport progress
	// during the run and dumps every rank's blocked-operation state on a
	// stall instead of hanging (see mpi.Watchdog).
	Watchdog mpi.Watchdog
	// SpareNodes appends empty hosts to the cluster; when present,
	// replacements are spawned onto the first spare instead of the failed
	// processes' original hosts.
	SpareNodes int
	// Hosts fixes the number of base cluster hosts (spares come on top).
	// 0 derives the smallest host count that fits the process count at
	// SlotsPerHost slots each. Together with SlotsPerHost and Racks this
	// pins the cluster shape the topology-aware collectives see.
	Hosts int
	// SlotsPerHost overrides the machine profile's slots-per-host (0 =
	// use the profile's value).
	SlotsPerHost int
	// Racks spreads the hosts (including spares) over this many racks in
	// contiguous balanced blocks; 0 or 1 keeps the single-rack layout.
	// Cross-rack links charge the machine's TierXRack cost.
	Racks int
	// ExtraLayers is the number of extra coarse layers the Alternate
	// Combination technique holds (0 = the paper's default of 2; -1 = no
	// extra layers; more layers tolerate deeper loss cascades at the cost
	// of extra processes).
	ExtraLayers int
	// Decomp2D decomposes each sub-grid over a 2D Cartesian process grid
	// (balanced MPI_Dims_create factors) instead of the default 1D row
	// bands — the decomposition ablation.
	Decomp2D bool
	// SerialCombine ships every sub-grid to rank 0 for a serial
	// combination instead of the default parallel gather-scatter — the
	// baseline of the combine ablation benchmark.
	SerialCombine bool
	// Trace, when non-nil, records a virtual-time event timeline of the
	// run (detection, repair, recovery, checkpoints, combination), with
	// spans for every protocol phase exportable as a Chrome/Perfetto trace.
	Trace *trace.Recorder
	// Metrics, when non-nil, instruments the run: MPI message/byte
	// counters, per-op latency histograms, and modelled cost attribution
	// (see internal/mpi and internal/metrics). Several runs may share one
	// registry to aggregate. nil disables instrumentation at zero cost.
	Metrics *metrics.Registry
	// Telemetry, when true and Metrics is nil, attaches a private per-run
	// registry so the Result's telemetry fields (MPI messages/bytes,
	// checkpoint I/O bytes) are populated — the harness uses this to add
	// deterministic per-cell telemetry columns.
	Telemetry bool
	// Journal, when non-nil, receives the run's structured failure-handling
	// events (failure detection, repair-phase transitions, checkpoint
	// commit/fallback/restore, fault injections), each stamped with virtual
	// time, rank and communicator epoch. nil disables journaling at zero
	// cost.
	Journal *telemetry.Journal
	// Introspect, when non-nil, registers the run's MPI world for the
	// duration of the job so the telemetry server's /debug/ranks endpoint
	// can take on-demand per-rank blocked-op snapshots.
	Introspect *mpi.Introspection
	// FlightDumpDir is where automatic flight-recorder post-mortems land
	// when a run aborts or the watchdog fires ("" = the OS temp directory).
	// When Trace is nil, Run attaches a bounded flight recorder to every run
	// so such a dump always exists; an explicit Trace is dumped as-is.
	FlightDumpDir string
	// CheckpointDir overrides the checkpoint directory (default: a fresh
	// temporary directory, removed after the run). Only meaningful with
	// the "dir" backend.
	CheckpointDir string
	// CheckpointBackend selects the storage backend for CR checkpoints:
	// "dir" (the default — real files under CheckpointDir or a fresh temp
	// directory) or "mem" (in-process, no real disk I/O; the simulated
	// T_I/O accounting is identical, so results are byte-identical — the
	// harness uses it for its thousands of short runs).
	CheckpointBackend string
	// CheckpointGenerations is how many checkpoint generations the store
	// keeps per (grid, rank); recovery falls back generation-by-generation
	// past corrupt or torn checkpoints (0 = checkpoint.DefaultGenerations).
	CheckpointGenerations int
	// CheckpointAsync moves checkpoint commits off the simulated ranks'
	// OS-thread critical path onto a write-behind queue, drained at
	// failure-detection points. Virtual-time accounting is unchanged, so
	// all outputs stay byte-identical; only wall-clock time changes.
	CheckpointAsync bool
	// CheckpointFaults, when non-nil, wraps the checkpoint backend with
	// seeded fault injection (corrupt reads, torn writes, I/O errors) —
	// the chaos campaign's checkpoint-corruption mode.
	CheckpointFaults *checkpoint.FaultPlan
	// MTBF overrides the mean time between failures used to size the
	// checkpoint interval (0 = half the estimated run time, the paper's
	// setup).
	MTBF float64
	// Event runs the simulated ranks on the event-driven transport path
	// (mpi.Options.EventEntry): each rank is a parked continuation driven by
	// a bounded worker pool instead of a dedicated goroutine, so wall-clock
	// memory stays O(workers) at any rank count. Results — virtual times,
	// traces, journals, metrics, the full Result — are byte-identical to the
	// goroutine path. The 2D decomposition and serial-combine ablations have
	// no fiber port yet and are rejected in this mode.
	Event bool
	// EventWorkers bounds the event path's executor pool (0 = NumCPU).
	// Ignored unless Event is set.
	EventWorkers int
}

// WithDefaults returns the configuration with zero fields filled in; Run
// applies it automatically.
func (c Config) WithDefaults() Config {
	if c.Layout.N == 0 {
		c.Layout = combine.Layout{N: 8, L: 4}
	}
	if c.Machine == nil {
		c.Machine = vtime.OPL()
	}
	if c.DiagProcs == 0 {
		c.DiagProcs = 8
	}
	if c.Steps == 0 {
		c.Steps = 256
	}
	if c.ComputeScale == 0 {
		c.ComputeScale = 32768
	}
	if c.Velocity == [2]float64{} {
		c.Velocity = [2]float64{1, 0.5}
	}
	if c.CFL == 0 {
		c.CFL = 0.8
	}
	if c.FailStep == 0 {
		c.FailStep = c.Steps / 2
	}
	switch {
	case c.ExtraLayers == 0:
		c.ExtraLayers = 2
	case c.ExtraLayers < 0:
		c.ExtraLayers = -1 // normalised "none"
	}
	if c.RecoveryMode == recovery.ModeSubstitute {
		if c.SpareRanks == 0 {
			c.SpareRanks = 8
		}
		if c.SpareNodes == 0 {
			c.SpareNodes = 1
		}
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Layout.Validate(); err != nil {
		return err
	}
	if c.DiagProcs < 1 {
		return fmt.Errorf("core: DiagProcs must be >= 1")
	}
	if c.DiagProcs > 1<<(c.Layout.N-c.Layout.L+1) {
		return fmt.Errorf("core: DiagProcs %d exceeds the rows of the coarsest grid", c.DiagProcs)
	}
	if c.Steps < 1 {
		return fmt.Errorf("core: Steps must be >= 1")
	}
	if c.FailStep < 0 || c.FailStep > c.Steps {
		return fmt.Errorf("core: FailStep %d outside [0, %d]", c.FailStep, c.Steps)
	}
	if c.NodeFailure {
		if !c.RealFailures {
			return fmt.Errorf("core: NodeFailure requires RealFailures")
		}
		if c.SpareNodes < 1 {
			return fmt.Errorf("core: NodeFailure requires at least one spare node")
		}
		if c.Technique == ResamplingCopying {
			return fmt.Errorf("core: NodeFailure can violate RC's pairwise recovery constraint; use CR or AC")
		}
	}
	if c.SpareNodes < 0 {
		return fmt.Errorf("core: SpareNodes must be >= 0")
	}
	if c.Hosts < 0 || c.SlotsPerHost < 0 || c.Racks < 0 {
		return fmt.Errorf("core: Hosts, SlotsPerHost and Racks must be >= 0")
	}
	if c.Hosts > 0 {
		slots := c.SlotsPerHost
		if slots == 0 && c.Machine != nil {
			slots = c.Machine.SlotsPerHost
		}
		if slots > 0 && c.Hosts*slots < c.NumProcs() {
			return fmt.Errorf("core: %d hosts x %d slots cannot hold %d processes",
				c.Hosts, slots, c.NumProcs())
		}
	}
	if c.Racks > 0 && c.Hosts > 0 && c.Racks > c.Hosts+c.SpareNodes {
		return fmt.Errorf("core: Racks %d exceeds %d hosts", c.Racks, c.Hosts+c.SpareNodes)
	}
	if c.ExtraLayers < -1 || c.ExtraLayers > c.Layout.L-2 {
		return fmt.Errorf("core: ExtraLayers %d outside [-1, %d]", c.ExtraLayers, c.Layout.L-2)
	}
	if len(c.OpFailures) > 0 {
		if !c.RealFailures {
			return fmt.Errorf("core: OpFailures requires RealFailures")
		}
		for i, e := range c.OpFailures {
			if e.AfterOps < 1 {
				return fmt.Errorf("core: OpFailures event %d: AfterOps must be >= 1", i)
			}
		}
	}
	switch c.CheckpointBackend {
	case "", "dir", "mem":
	default:
		return fmt.Errorf("core: unknown checkpoint backend %q (want dir or mem)", c.CheckpointBackend)
	}
	if c.CheckpointGenerations < 0 {
		return fmt.Errorf("core: CheckpointGenerations must be >= 0")
	}
	if fp := c.CheckpointFaults; fp != nil {
		for _, pr := range []struct {
			name string
			v    float64
		}{
			{"ReadCorrupt", fp.ReadCorrupt}, {"ReadErr", fp.ReadErr},
			{"WriteShort", fp.WriteShort}, {"WriteErr", fp.WriteErr},
		} {
			if pr.v < 0 || pr.v > 1 {
				return fmt.Errorf("core: CheckpointFaults.%s = %g outside [0, 1]", pr.name, pr.v)
			}
		}
	}
	if c.RecoveryMode != recovery.ModeSpawn {
		if c.NumFailures > 0 && !c.RealFailures {
			return fmt.Errorf("core: recovery mode %v requires RealFailures (simulated losses are spawn-only)", c.RecoveryMode)
		}
		if c.SerialCombine {
			return fmt.Errorf("core: SerialCombine supports only the spawn recovery mode")
		}
	}
	if c.SpareRanks < 0 {
		return fmt.Errorf("core: SpareRanks must be >= 0")
	}
	if c.SpareRanks > 0 && c.RecoveryMode != recovery.ModeSubstitute {
		return fmt.Errorf("core: SpareRanks requires the substitute recovery mode")
	}
	if c.Event {
		if c.Decomp2D {
			return fmt.Errorf("core: Event has no fiber port of the 2D decomposition yet")
		}
		if c.SerialCombine {
			return fmt.Errorf("core: Event has no fiber port of the serial combination yet")
		}
		if c.EventWorkers < 0 {
			return fmt.Errorf("core: EventWorkers must be >= 0")
		}
	}
	if len(c.FailSchedule) > 0 {
		if !c.RealFailures {
			return fmt.Errorf("core: FailSchedule requires RealFailures")
		}
		if c.NodeFailure {
			return fmt.Errorf("core: FailSchedule and NodeFailure are mutually exclusive")
		}
		for i, e := range c.FailSchedule {
			if e.Step < 1 || e.Step > c.Steps {
				return fmt.Errorf("core: FailSchedule event %d at step %d outside [1, %d]", i, e.Step, c.Steps)
			}
			if e.Failures < 1 {
				return fmt.Errorf("core: FailSchedule event %d has %d failures", i, e.Failures)
			}
		}
	}
	return nil
}

// Grids returns the sub-grid set of the configured technique with process
// counts and the contiguous rank assignment. CR holds the 7 main grids
// (l = 4), RC adds the duplicates (11 grids) and AC the two extra layers
// (10 grids); see Fig. 1.
func (c Config) Grids() []SubGrid {
	ly := c.Layout
	procsOf := func(role GridRole) int {
		switch role {
		case RoleDiagonal, RoleDuplicate:
			return c.DiagProcs
		case RoleLowerDiagonal:
			return maxI(1, c.DiagProcs/2)
		case RoleExtraLayer1:
			return maxI(1, c.DiagProcs/4)
		default:
			return maxI(1, c.DiagProcs/8)
		}
	}
	var grids []SubGrid
	add := func(lv grid.Level, role GridRole) {
		grids = append(grids, SubGrid{ID: len(grids), Lv: lv, Role: role, Procs: procsOf(role)})
	}
	for _, lv := range ly.Diagonal() {
		add(lv, RoleDiagonal)
	}
	for _, lv := range ly.LowerDiagonal() {
		add(lv, RoleLowerDiagonal)
	}
	switch c.Technique {
	case ResamplingCopying:
		for _, lv := range ly.Diagonal() {
			add(lv, RoleDuplicate)
		}
	case AlternateCombination:
		layers := c.ExtraLayers
		if layers == 0 {
			layers = 2
		}
		if layers < 0 {
			layers = 0
		}
		for d := 2; d < 2+layers; d++ {
			role := RoleExtraLayer1
			if d > 2 {
				role = RoleExtraLayer2
			}
			for _, lv := range ly.Row(d) {
				add(lv, role)
			}
		}
	}
	rank := 0
	for i := range grids {
		grids[i].FirstRank = rank
		rank += grids[i].Procs
	}
	return grids
}

// NumProcs returns the total process count of the configuration.
func (c Config) NumProcs() int {
	n := 0
	for _, g := range c.Grids() {
		n += g.Procs
	}
	return n
}

// gridOfRank returns the sub-grid owning the given rank.
func gridOfRank(grids []SubGrid, rank int) (SubGrid, error) {
	for _, g := range grids {
		if rank >= g.FirstRank && rank < g.FirstRank+g.Procs {
			return g, nil
		}
	}
	return SubGrid{}, fmt.Errorf("core: rank %d outside all process groups", rank)
}

// recoveryPartner returns, for a lost grid, the grid it recovers from under
// Resampling and Copying, and whether restriction (resampling) is needed.
// Diagonal grid d pairs with duplicate d and vice versa (exact copy); lower
// grid m recovers by resampling the diagonal grid m+1 above it.
func recoveryPartner(grids []SubGrid, lost SubGrid) (SubGrid, bool, error) {
	l := 0
	for _, g := range grids {
		if g.Role == RoleDiagonal {
			l++
		}
	}
	switch lost.Role {
	case RoleDiagonal:
		return grids[2*l-1+lost.ID], false, nil
	case RoleDuplicate:
		return grids[lost.ID-(2*l-1)], false, nil
	case RoleLowerDiagonal:
		m := lost.ID - l
		return grids[m+1], true, nil
	default:
		return SubGrid{}, false, fmt.Errorf("core: no recovery partner for %v grid %d", lost.Role, lost.ID)
	}
}

// rcConflicts lists the grid pairs that must not fail simultaneously under
// Resampling and Copying (the constraint of Section III).
func rcConflicts(grids []SubGrid) [][2]int {
	var out [][2]int
	for _, g := range grids {
		if g.Role == RoleDiagonal || g.Role == RoleLowerDiagonal {
			p, _, err := recoveryPartner(grids, g)
			if err == nil {
				out = append(out, [2]int{g.ID, p.ID})
			}
		}
	}
	return out
}

// Problem returns the advection problem and shared timestep of the config.
func (c Config) Problem() (*pde.Problem, float64) {
	prob := &pde.Problem{Ax: c.Velocity[0], Ay: c.Velocity[1], U0: pde.SinProduct}
	h := math.Pow(2, -float64(c.Layout.N))
	return prob, pde.StableDt(h, h, prob.Ax, prob.Ay, c.CFL)
}

// EstimateStepTime returns the virtual time of one solver step for one
// process (every grid has the same cells-per-process by construction).
func (c Config) EstimateStepTime() float64 {
	diagCells := float64(int64(1) << uint(2*c.Layout.N-c.Layout.L+1))
	return diagCells / float64(c.DiagProcs) * c.Machine.CellCost * c.ComputeScale
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
