package core

import (
	"math"
	"testing"

	"ftsg/internal/vtime"
)

// fastCfg returns a small, quick configuration for tests.
func fastCfg(t Technique) Config {
	return Config{
		Technique:    t,
		DiagProcs:    4,
		Steps:        64,
		ComputeScale: 32768,
		Machine:      vtime.OPL(),
		Seed:         1,
	}
}

func TestRunNoFailures(t *testing.T) {
	for _, tech := range []Technique{CheckpointRestart, ResamplingCopying, AlternateCombination} {
		res, err := Run(fastCfg(tech))
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if res.L1Error <= 0 || res.L1Error > 0.05 {
			t.Errorf("%v: L1 error %g out of range", tech, res.L1Error)
		}
		if res.TotalTime <= 0 {
			t.Errorf("%v: total time %g", tech, res.TotalTime)
		}
		if len(res.FailedRanks) != 0 || res.Spawned != 0 {
			t.Errorf("%v: unexpected failures %v", tech, res.FailedRanks)
		}
		if res.ReconstructTime != 0 {
			t.Errorf("%v: reconstruct time %g without failures", tech, res.ReconstructTime)
		}
	}
}

// TestGridSetsMatchPaper checks the process counts of the three techniques
// against the paper (l = 4, diagonal procs 8): CR 44, RC 76, AC 49.
func TestGridSetsMatchPaper(t *testing.T) {
	for _, tc := range []struct {
		tech  Technique
		grids int
		procs int
	}{
		{CheckpointRestart, 7, 44},
		{ResamplingCopying, 11, 76},
		{AlternateCombination, 10, 49},
	} {
		cfg := Config{Technique: tc.tech, DiagProcs: 8}.WithDefaults()
		if got := len(cfg.Grids()); got != tc.grids {
			t.Errorf("%v: %d grids, want %d", tc.tech, got, tc.grids)
		}
		if got := cfg.NumProcs(); got != tc.procs {
			t.Errorf("%v: %d procs, want %d", tc.tech, got, tc.procs)
		}
	}
	// The paper's Fig. 8 core counts come from the RC set at DiagProcs
	// {2,4,8,16,32}.
	want := map[int]int{2: 19, 4: 38, 8: 76, 16: 152, 32: 304}
	for dp, procs := range want {
		cfg := Config{Technique: ResamplingCopying, DiagProcs: dp}.WithDefaults()
		if got := cfg.NumProcs(); got != procs {
			t.Errorf("RC DiagProcs=%d: %d procs, want %d", dp, got, procs)
		}
	}
}

func TestRecoveryPartnerMapping(t *testing.T) {
	cfg := Config{Technique: ResamplingCopying, DiagProcs: 8}.WithDefaults()
	grids := cfg.Grids()
	// Paper Fig. 1: 0<->7, 1<->8, 2<->9, 3<->10; 4<-1, 5<-2, 6<-3.
	cases := []struct {
		lost, src int
		resample  bool
	}{
		{0, 7, false}, {7, 0, false}, {1, 8, false}, {8, 1, false},
		{3, 10, false}, {10, 3, false},
		{4, 1, true}, {5, 2, true}, {6, 3, true},
	}
	for _, c := range cases {
		src, resample, err := recoveryPartner(grids, grids[c.lost])
		if err != nil {
			t.Fatalf("partner(%d): %v", c.lost, err)
		}
		if src.ID != c.src || resample != c.resample {
			t.Errorf("partner(%d) = %d (resample %v), want %d (%v)",
				c.lost, src.ID, resample, c.src, c.resample)
		}
	}
	if _, _, err := recoveryPartner(grids, SubGrid{Role: RoleExtraLayer1}); err == nil {
		t.Error("extra-layer grid has no RC partner but got one")
	}
}

func TestSimulatedLossErrorOrdering(t *testing.T) {
	// Paper Fig. 10 shapes: CR error identical to baseline (exact
	// recovery); RC and AC errors grow with losses; AC more accurate than
	// RC; all within a factor of 10 of baseline.
	base := map[Technique]float64{}
	for _, tech := range []Technique{CheckpointRestart, ResamplingCopying, AlternateCombination} {
		res, err := Run(fastCfg(tech))
		if err != nil {
			t.Fatal(err)
		}
		base[tech] = res.L1Error
	}
	// Average a few trials per technique, as the paper averages 20.
	lossErr := map[Technique]float64{}
	for _, tech := range []Technique{CheckpointRestart, ResamplingCopying, AlternateCombination} {
		var sum float64
		const trials = 4
		for s := int64(0); s < trials; s++ {
			cfg := fastCfg(tech)
			cfg.NumFailures = 2
			cfg.Seed = 3 + s
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v: %v", tech, err)
			}
			if len(res.LostGrids) != 2 {
				t.Fatalf("%v: lost grids %v", tech, res.LostGrids)
			}
			sum += res.L1Error
		}
		lossErr[tech] = sum / trials
	}
	if d := math.Abs(lossErr[CheckpointRestart] - base[CheckpointRestart]); d > 1e-12 {
		t.Errorf("CR error changed by %g under simulated loss (must be exact recovery)", d)
	}
	if lossErr[ResamplingCopying] <= base[ResamplingCopying] {
		t.Errorf("RC error %g did not grow from %g", lossErr[ResamplingCopying], base[ResamplingCopying])
	}
	if lossErr[AlternateCombination] <= base[AlternateCombination] {
		t.Errorf("AC error %g did not grow from %g", lossErr[AlternateCombination], base[AlternateCombination])
	}
	// The paper's "surprising result": the Alternate Combination is MORE
	// accurate than the near-exact Resampling and Copying.
	if lossErr[AlternateCombination] >= lossErr[ResamplingCopying] {
		t.Errorf("AC error %g not below RC error %g (paper Section III-C)",
			lossErr[AlternateCombination], lossErr[ResamplingCopying])
	}
	if lossErr[AlternateCombination] > 10*base[AlternateCombination] {
		t.Errorf("AC error %g beyond 10x baseline %g", lossErr[AlternateCombination], base[AlternateCombination])
	}
	// At this deliberately tiny test scale the baseline solver error is
	// very small, so RC's resampling error can exceed the paper's
	// factor-of-10 envelope (which holds at the paper's resolution); keep
	// it bounded rather than exact.
	if lossErr[ResamplingCopying] > 50*base[ResamplingCopying] {
		t.Errorf("RC error %g beyond 50x baseline %g", lossErr[ResamplingCopying], base[ResamplingCopying])
	}
}

func TestRealFailureSingle(t *testing.T) {
	for _, tech := range []Technique{CheckpointRestart, ResamplingCopying, AlternateCombination} {
		cfg := fastCfg(tech)
		cfg.NumFailures = 1
		cfg.RealFailures = true
		cfg.Seed = 5
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if res.Spawned != 1 || len(res.FailedRanks) != 1 {
			t.Errorf("%v: spawned %d failed %v", tech, res.Spawned, res.FailedRanks)
		}
		if res.ReconstructTime <= 0 {
			t.Errorf("%v: no reconstruction time recorded", tech)
		}
		if res.L1Error <= 0 || res.L1Error > 0.1 {
			t.Errorf("%v: L1 error %g after real failure", tech, res.L1Error)
		}
	}
}

func TestRealFailureDouble(t *testing.T) {
	cfg := fastCfg(AlternateCombination)
	cfg.NumFailures = 2
	cfg.RealFailures = true
	cfg.Seed = 7
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spawned != 2 {
		t.Fatalf("spawned %d, want 2", res.Spawned)
	}
	// Two failures must charge the expensive beta-ULFM path: spawn at
	// 49 cores, f=2 costs interp(Table I) >> single failure.
	single := fastCfg(AlternateCombination)
	single.NumFailures = 1
	single.RealFailures = true
	single.Seed = 7
	sres, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReconstructTime <= sres.ReconstructTime {
		t.Errorf("double-failure reconstruct %g not above single %g",
			res.ReconstructTime, sres.ReconstructTime)
	}
}

func TestValidation(t *testing.T) {
	cfg := fastCfg(CheckpointRestart)
	cfg.DiagProcs = 1024 // more procs than rows
	if _, err := Run(cfg); err == nil {
		t.Error("oversubscribed grid accepted")
	}
	cfg = fastCfg(CheckpointRestart)
	cfg.FailStep = 1 << 20
	if _, err := Run(cfg); err == nil {
		t.Error("FailStep beyond Steps accepted")
	}
}

func TestCheckpointWritesHappen(t *testing.T) {
	cfg := fastCfg(CheckpointRestart)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointWrites < 1 {
		t.Fatalf("no checkpoints written (plan %+v)", res.CheckpointPlan)
	}
	if res.CheckpointWrites > res.CheckpointPlan.Count {
		t.Fatalf("writes %d exceed plan %d", res.CheckpointWrites, res.CheckpointPlan.Count)
	}
}

func TestEstimateStepTimePositive(t *testing.T) {
	cfg := fastCfg(CheckpointRestart).WithDefaults()
	if cfg.EstimateStepTime() <= 0 {
		t.Fatal("non-positive step time estimate")
	}
}
