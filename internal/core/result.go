package core

import (
	"fmt"
	"strings"

	"ftsg/internal/checkpoint"
)

// Result summarises one run of the fault-tolerant application. All times
// are virtual seconds; component times are maxima over the process ranks.
type Result struct {
	Technique Technique
	Machine   string
	// Procs is the communicator size (preserved across failures).
	Procs int
	// GridCount is the number of sub-grids (including redundancy).
	GridCount int
	Steps     int

	// TotalTime is the end-to-end virtual run time (max over processes).
	TotalTime float64
	// ListTime is the failure-information time (Fig. 8a): detection agree
	// + barrier + group algebra at the failure event.
	ListTime float64
	// ReconstructTime is the communicator reconstruction time (Fig. 8b).
	ReconstructTime float64
	// Component times within reconstruction (Table I).
	ShrinkTime float64
	SpawnTime  float64
	MergeTime  float64
	AgreeTime  float64
	SplitTime  float64
	// DetectOverhead is the failure-free detection cost (CR tests for
	// failures before every checkpoint write).
	DetectOverhead float64
	// DataRecoveryTime is the data-recovery window (Fig. 9a): checkpoint
	// read + recomputation for CR, copy/resample transfers for RC,
	// coefficient computation for AC.
	DataRecoveryTime float64
	// CheckpointWrites counts completed checkpoint writes; the plan
	// records the interval used.
	CheckpointWrites int
	CheckpointPlan   checkpoint.Plan
	// CombineTime is the gather/combine phase duration at rank 0.
	CombineTime float64

	// L1Error is the mean absolute error of the combined solution against
	// the analytic solution (Fig. 10).
	L1Error float64

	LostGrids   []int
	FailedRanks []int
	Spawned     int

	// Mode is the recovery mode the run used (spawn unless configured).
	Mode string
	// FinalProcs is the communicator size at the end of the run: equal to
	// Procs under spawn and substitute, smaller under shrink/norepair when
	// failures struck.
	FinalProcs int
	// SparesUsed counts pre-allocated spare processes consumed by
	// substitute repairs (including spares orphaned by abandoned rounds).
	SparesUsed int
	// RepairFallbacks counts substitute repair rounds that found the spare
	// pool exhausted and degraded to shrink-only.
	RepairFallbacks int
	// Survivors lists, for the non-spawn modes, the original ranks present
	// in the final communicator, in communicator order (spawn restores
	// everything, so it is left nil there).
	Survivors []int
	// AbandonedGrids lists sub-grids abandoned by shrink/norepair
	// recovery (no data, coefficients redistributed), ascending.
	AbandonedGrids []int

	// Telemetry (populated only when Config.Metrics or Config.Telemetry is
	// set; zero otherwise): total MPI traffic of the run and checkpoint
	// I/O volume.
	MPIMessages        int64
	MPIBytes           int64
	CheckpointBytesOut int64
	CheckpointBytesIn  int64

	// TIOWrite is the per-checkpoint disk write latency of the machine the
	// run used (for overhead accounting).
	TIOWrite float64
}

// AppTime returns the run time excluding communicator reconstruction — the
// quantity the paper's process-time overhead formulas call T_app.
func (r *Result) AppTime() float64 {
	t := r.TotalTime - r.ReconstructTime - r.ListTime
	if t < 0 {
		return 0
	}
	return t
}

// RecoveryOverhead returns the paper's Fig. 9a quantity for this run: for
// CR the total checkpoint writes plus read/recompute, for RC and AC the
// data-recovery window.
func (r *Result) RecoveryOverhead() float64 {
	if r.Technique == CheckpointRestart {
		return float64(r.CheckpointWrites)*r.TIOWrite + r.DataRecoveryTime
	}
	return r.DataRecoveryTime
}

// ProcessTimeOverhead implements the paper's normalized process-time
// overheads (Section III-B): CR is charged its checkpoint I/O and
// recomputation; RC and AC are additionally charged for their extra
// processes relative to CR's process count pc:
//
//	T'rec,c = C*T_IO + Trec,c
//	T'rec,r = (Trec,r*Pr + Tapp,r*(Pr-Pc)) / Pc
//	T'rec,a = (Trec,a*Pa + Tapp,a*(Pa-Pc)) / Pc
func (r *Result) ProcessTimeOverhead(pc int) float64 {
	switch r.Technique {
	case CheckpointRestart:
		return r.RecoveryOverhead()
	default:
		p := float64(r.Procs)
		return (r.DataRecoveryTime*p + r.AppTime()*(p-float64(pc))) / float64(pc)
	}
}

// String renders a compact one-line summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: procs=%d total=%.2fs err=%.3e", r.Technique, r.Machine, r.Procs, r.TotalTime, r.L1Error)
	if len(r.FailedRanks) > 0 {
		fmt.Fprintf(&b, " failed=%v list=%.2fs reconstruct=%.2fs", r.FailedRanks, r.ListTime, r.ReconstructTime)
	}
	if len(r.LostGrids) > 0 {
		fmt.Fprintf(&b, " lostGrids=%v recovery=%.3fs", r.LostGrids, r.DataRecoveryTime)
	}
	return b.String()
}
