package core

import (
	"math"
	"runtime"
	"testing"
	"time"

	"ftsg/internal/faultgen"
	"ftsg/internal/ftcomb"
	"ftsg/internal/mpi"
	"ftsg/internal/recovery"
)

// modeCfg returns a quick real-failure configuration under the given
// recovery mode.
func modeCfg(t Technique, mode recovery.Mode) Config {
	cfg := fastCfg(t)
	cfg.RecoveryMode = mode
	cfg.NumFailures = 1
	cfg.RealFailures = true
	cfg.Seed = 5
	cfg.Watchdog = mpi.Watchdog{Timeout: 60 * time.Second}
	return cfg
}

// TestRecoveryModeSmoke runs every non-spawn mode against every technique
// with a single failure and checks the mode's structural promises on the
// Result: shrink and no-repair lose exactly the failed ranks and never
// replace anything; substitute restores the size from the spare pool.
func TestRecoveryModeSmoke(t *testing.T) {
	for _, tech := range []Technique{CheckpointRestart, ResamplingCopying, AlternateCombination} {
		for _, mode := range []recovery.Mode{recovery.ModeShrink, recovery.ModeSubstitute, recovery.ModeNoRepair} {
			res, err := Run(modeCfg(tech, mode))
			if err != nil {
				t.Fatalf("%v/%v: %v", tech, mode, err)
			}
			if res.Mode != mode.String() {
				t.Errorf("%v/%v: result mode %q", tech, mode, res.Mode)
			}
			if res.Spawned != 0 {
				t.Errorf("%v/%v: spawned %d replacements", tech, mode, res.Spawned)
			}
			if len(res.FailedRanks) != 1 {
				t.Fatalf("%v/%v: failed ranks %v, want one", tech, mode, res.FailedRanks)
			}
			if res.ReconstructTime <= 0 {
				t.Errorf("%v/%v: no reconstruction time recorded", tech, mode)
			}
			switch mode {
			case recovery.ModeSubstitute:
				if res.FinalProcs != res.Procs {
					t.Errorf("%v/%v: final size %d, want restored %d", tech, mode, res.FinalProcs, res.Procs)
				}
				if res.SparesUsed < 1 {
					t.Errorf("%v/%v: consumed %d spares", tech, mode, res.SparesUsed)
				}
				if res.RepairFallbacks != 0 {
					t.Errorf("%v/%v: %d fallbacks with spares available", tech, mode, res.RepairFallbacks)
				}
				if len(res.Survivors) != res.Procs {
					t.Errorf("%v/%v: %d survivors, want %d", tech, mode, len(res.Survivors), res.Procs)
				}
			default:
				if res.FinalProcs != res.Procs-len(res.FailedRanks) {
					t.Errorf("%v/%v: final size %d, want %d-%d", tech, mode, res.FinalProcs, res.Procs, len(res.FailedRanks))
				}
				if res.SparesUsed != 0 {
					t.Errorf("%v/%v: consumed %d spares", tech, mode, res.SparesUsed)
				}
				if len(res.Survivors) != res.FinalProcs {
					t.Errorf("%v/%v: %d survivors, want %d", tech, mode, len(res.Survivors), res.FinalProcs)
				}
				// Survivors are the original ranks minus the failed ones, in
				// order (the shrink contract), and never include a failed rank.
				for i := 1; i < len(res.Survivors); i++ {
					if res.Survivors[i] <= res.Survivors[i-1] {
						t.Errorf("%v/%v: survivors %v not strictly increasing", tech, mode, res.Survivors)
						break
					}
				}
				for _, f := range res.FailedRanks {
					if containsInt(res.Survivors, f) {
						t.Errorf("%v/%v: failed rank %d among survivors", tech, mode, f)
					}
				}
			}
			if mode == recovery.ModeNoRepair && res.DataRecoveryTime != 0 {
				t.Errorf("%v/%v: recovered data (%.3fs) under no-repair", tech, mode, res.DataRecoveryTime)
			}
			if res.L1Error <= 0 || math.IsNaN(res.L1Error) {
				t.Errorf("%v/%v: L1 error %g", tech, mode, res.L1Error)
			}
		}
	}
}

// TestRecoveryModeDifferential runs the same seed and failure plan under
// spawn, shrink and substitute: the three modes must agree on which ranks
// failed and on the surviving-rank order, and each mode's virtual time must
// be byte-identical between GOMAXPROCS=1 and the full machine (run this
// under -race for the full satellite check).
func TestRecoveryModeDifferential(t *testing.T) {
	type outcome struct {
		total     uint64
		l1        uint64
		failed    []int
		survivors []int
	}
	run := func(tech Technique, mode recovery.Mode) outcome {
		t.Helper()
		cfg := fastCfg(tech)
		cfg.RecoveryMode = mode
		cfg.RealFailures = true
		cfg.Seed = 17
		cfg.FailSchedule = []faultgen.Event{{Step: 24, Failures: 1}, {Step: 48, Failures: 1}}
		cfg.Watchdog = mpi.Watchdog{Timeout: 120 * time.Second}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v/%v: %v", tech, mode, err)
		}
		return outcome{
			total:     math.Float64bits(res.TotalTime),
			l1:        math.Float64bits(res.L1Error),
			failed:    res.FailedRanks,
			survivors: res.Survivors,
		}
	}
	modes := []recovery.Mode{recovery.ModeSpawn, recovery.ModeShrink, recovery.ModeSubstitute}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, tech := range []Technique{CheckpointRestart, AlternateCombination} {
		got := make(map[recovery.Mode]outcome)
		for _, mode := range modes {
			runtime.GOMAXPROCS(prev)
			wide := run(tech, mode)
			runtime.GOMAXPROCS(1)
			narrow := run(tech, mode)
			runtime.GOMAXPROCS(prev)
			if wide.total != narrow.total || wide.l1 != narrow.l1 {
				t.Errorf("%v/%v: virtual time or L1 differ across GOMAXPROCS (%x vs %x, %x vs %x)",
					tech, mode, wide.total, narrow.total, wide.l1, narrow.l1)
			}
			got[mode] = wide
		}
		// The failure plan is mode-independent: every mode sees the same
		// failed ranks (spawn's Result reports only the first event's list,
		// the mode paths union across events — compare the shared prefix).
		base := got[recovery.ModeSpawn].failed
		for _, mode := range modes[1:] {
			if len(got[mode].failed) == 0 || !equalInts(got[mode].failed[:len(base)], base) {
				t.Errorf("%v: failed ranks differ: spawn %v vs %v %v",
					tech, base, mode, got[mode].failed)
			}
		}
		// Substitute restores everything, so its survivor list is the
		// identity; shrink's is the identity minus the failed ranks, in order.
		sub := got[recovery.ModeSubstitute].survivors
		for i, o := range sub {
			if o != i {
				t.Errorf("%v: substitute survivors %v not the identity", tech, sub)
				break
			}
		}
		shr := got[recovery.ModeShrink].survivors
		want := 0
		for _, o := range shr {
			for containsInt(got[recovery.ModeShrink].failed, want) {
				want++
			}
			if o != want {
				t.Errorf("%v: shrink survivors %v do not match identity minus failed %v",
					tech, shr, got[recovery.ModeShrink].failed)
				break
			}
			want++
		}
	}
}

// TestSubstituteSparesExhaustedFallsBack is the regression test for
// back-to-back failures with an undersized spare pool: the first event
// consumes the only spare, the second must deterministically fall back to
// shrink — not deadlock (watchdog-guarded) and not error out.
func TestSubstituteSparesExhaustedFallsBack(t *testing.T) {
	cfg := fastCfg(CheckpointRestart)
	cfg.RecoveryMode = recovery.ModeSubstitute
	cfg.SpareRanks = 1
	cfg.RealFailures = true
	cfg.Seed = 23
	cfg.FailSchedule = []faultgen.Event{{Step: 16, Failures: 1}, {Step: 40, Failures: 1}}
	cfg.Watchdog = mpi.Watchdog{Timeout: 120 * time.Second}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SparesUsed != 1 {
		t.Errorf("spares used %d, want exactly 1", res.SparesUsed)
	}
	if res.RepairFallbacks != 1 {
		t.Errorf("fallbacks %d, want 1 (second event must degrade to shrink)", res.RepairFallbacks)
	}
	if res.Spawned != 0 {
		t.Errorf("spawned %d replacements under substitute", res.Spawned)
	}
	if res.FinalProcs != res.Procs-1 {
		t.Errorf("final size %d, want %d (one unreplaced failure)", res.FinalProcs, res.Procs-1)
	}
	if len(res.Survivors) != res.FinalProcs {
		t.Errorf("%d survivors, want %d", len(res.Survivors), res.FinalProcs)
	}
}

// TestNoRepairBaseline pins the measured-baseline semantics of the
// no-repair mode: the communicator shrinks, no data recovery happens (no
// checkpoint reads, zero data-recovery time), the abandoned grids are
// reported, and the run still produces a (degraded but bounded) solution.
func TestNoRepairBaseline(t *testing.T) {
	base, err := Run(fastCfg(CheckpointRestart))
	if err != nil {
		t.Fatal(err)
	}
	cfg := modeCfg(CheckpointRestart, recovery.ModeNoRepair)
	cfg.Telemetry = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DataRecoveryTime != 0 {
		t.Errorf("no-repair recovered data: %.3fs", res.DataRecoveryTime)
	}
	if res.CheckpointBytesIn != 0 {
		t.Errorf("no-repair read %d checkpoint bytes", res.CheckpointBytesIn)
	}
	if len(res.AbandonedGrids) == 0 {
		t.Error("no abandoned grids recorded after a failure under no-repair")
	}
	if res.L1Error <= 0 || res.L1Error > ftcomb.DegradedErrorFactor*base.L1Error {
		t.Errorf("no-repair L1 %g outside (0, %gx baseline %g]", res.L1Error, ftcomb.DegradedErrorFactor, base.L1Error)
	}
}
