package core

import (
	"math"
	"testing"

	"ftsg/internal/faultgen"
	"ftsg/internal/trace"
	"ftsg/internal/vtime"
)

// TestCRRealFailureIsExact is the strongest end-to-end correctness check:
// after a REAL process failure, full communicator reconstruction, restore
// from the on-disk checkpoint and recomputation, the combined solution must
// be bitwise identical to the failure-free run — Checkpoint/Restart is an
// exact recovery technique (the paper's Fig. 10 shows its error independent
// of failures).
func TestCRRealFailureIsExact(t *testing.T) {
	base := fastCfg(CheckpointRestart)
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, failures := range []int{1, 2} {
		cfg := base
		cfg.NumFailures = failures
		cfg.RealFailures = true
		cfg.Seed = 17
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("failures=%d: %v", failures, err)
		}
		if res.Spawned != failures {
			t.Fatalf("failures=%d: spawned %d", failures, res.Spawned)
		}
		if res.L1Error != clean.L1Error {
			t.Errorf("failures=%d: error %.17g != failure-free %.17g (CR must be exact)",
				failures, res.L1Error, clean.L1Error)
		}
	}
}

// TestRCRealFailureDiagonalCopyIsExact: a real failure confined to a
// diagonal grid (or its duplicate) recovers by copying the twin, which
// solved the identical problem — so the combined error is unchanged. Losing
// a lower-diagonal grid resamples from a finer grid and perturbs the error.
func TestRCRealFailureBounded(t *testing.T) {
	base := fastCfg(ResamplingCopying)
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.NumFailures = 2
	cfg.RealFailures = true
	cfg.Seed = 23
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.L1Error <= 0 || res.L1Error > 100*clean.L1Error {
		t.Errorf("RC error %g unreasonable vs clean %g", res.L1Error, clean.L1Error)
	}
}

// TestDeterminism: identical configurations (same seed) must produce
// identical numerics and failure sets; virtual times are reproducible to
// within the schedule-dependent error-handler charges (see below).
func TestDeterminism(t *testing.T) {
	cfg := fastCfg(AlternateCombination)
	cfg.NumFailures = 2
	cfg.RealFailures = true
	cfg.Seed = 31
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.L1Error != b.L1Error {
		t.Errorf("L1 error differs: %.17g vs %.17g", a.L1Error, b.L1Error)
	}
	// Times are deterministic up to which ranks happen to observe a
	// collective failure first (non-uniform reporting is genuinely
	// schedule-dependent, and each observer charges the error-handler ack
	// path); numerics and failure sets are exact, virtual times agree to
	// within microseconds.
	if d := math.Abs(a.TotalTime - b.TotalTime); d > 1e-3 {
		t.Errorf("total time differs by %g s: %.17g vs %.17g", d, a.TotalTime, b.TotalTime)
	}
	if d := math.Abs(a.ReconstructTime - b.ReconstructTime); d > 1e-3 {
		t.Errorf("reconstruct time differs by %g s", d)
	}
	if len(a.FailedRanks) != len(b.FailedRanks) {
		t.Fatalf("failed ranks differ: %v vs %v", a.FailedRanks, b.FailedRanks)
	}
	for i := range a.FailedRanks {
		if a.FailedRanks[i] != b.FailedRanks[i] {
			t.Fatalf("failed ranks differ: %v vs %v", a.FailedRanks, b.FailedRanks)
		}
	}
}

// TestRaijinFasterCheckpoints: the same CR configuration on Raijin must
// write more, cheaper checkpoints than on OPL and end up with lower total
// time (the machine-profile contrast of Section III-B).
func TestRaijinFasterCheckpoints(t *testing.T) {
	opl := fastCfg(CheckpointRestart)
	raijin := fastCfg(CheckpointRestart)
	raijin.Machine = vtime.Raijin()
	ro, err := Run(opl)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(raijin)
	if err != nil {
		t.Fatal(err)
	}
	if rr.CheckpointPlan.Count <= ro.CheckpointPlan.Count {
		t.Errorf("Raijin plans %d checkpoints, OPL %d; want more on the faster disk",
			rr.CheckpointPlan.Count, ro.CheckpointPlan.Count)
	}
	oplCkpt := float64(ro.CheckpointWrites) * 3.52
	raijinCkpt := float64(rr.CheckpointWrites) * 0.03
	if raijinCkpt >= oplCkpt {
		t.Errorf("Raijin checkpoint time %g not below OPL %g", raijinCkpt, oplCkpt)
	}
}

// TestFailureCostOrdering: the two-failure run pays the expensive
// beta-ULFM repair path and must cost clearly more than the failure-free
// run; the single-failure run stays close to baseline (its repair is cheap,
// and under AC the abandoned grid even stops computing — an emergent effect
// also visible in the paper's Fig. 11a, where the one-failure curves hug
// the zero-failure ones).
func TestFailureCostOrdering(t *testing.T) {
	times := make([]float64, 3)
	for f := 0; f <= 2; f++ {
		cfg := fastCfg(AlternateCombination)
		cfg.NumFailures = f
		cfg.RealFailures = f > 0
		cfg.Seed = 37
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		times[f] = res.TotalTime
	}
	if times[2] <= times[0]*1.02 {
		t.Errorf("two-failure run (%g) not clearly above failure-free (%g)", times[2], times[0])
	}
	if d := math.Abs(times[1]-times[0]) / times[0]; d > 0.10 {
		t.Errorf("single-failure run %g strays %.0f%% from baseline %g", times[1], d*100, times[0])
	}
}

// TestResultHelpers exercises the Result accessors.
func TestResultHelpers(t *testing.T) {
	cfg := fastCfg(CheckpointRestart)
	cfg.NumFailures = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AppTime() <= 0 || res.AppTime() > res.TotalTime {
		t.Errorf("AppTime %g outside (0, %g]", res.AppTime(), res.TotalTime)
	}
	if res.RecoveryOverhead() <= 0 {
		t.Error("CR recovery overhead not positive")
	}
	if s := res.String(); s == "" {
		t.Error("empty String()")
	}
	if math.IsNaN(res.ProcessTimeOverhead(44)) {
		t.Error("NaN process-time overhead")
	}
}

// TestMTBFOverride: a shorter MTBF forces more frequent checkpoints.
func TestMTBFOverride(t *testing.T) {
	long := fastCfg(CheckpointRestart)
	short := fastCfg(CheckpointRestart)
	short.MTBF = long.WithDefaults().EstimateStepTime() * 4 // absurdly failure-prone
	lr, err := Run(long)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Run(short)
	if err != nil {
		t.Fatal(err)
	}
	if sr.CheckpointPlan.IntervalSteps >= lr.CheckpointPlan.IntervalSteps {
		t.Errorf("short MTBF interval %d not below default %d",
			sr.CheckpointPlan.IntervalSteps, lr.CheckpointPlan.IntervalSteps)
	}
}

// TestTechniqueStrings covers the Stringer implementations.
func TestTechniqueStrings(t *testing.T) {
	if CheckpointRestart.String() != "CR" || ResamplingCopying.String() != "RC" ||
		AlternateCombination.String() != "AC" {
		t.Error("technique names wrong")
	}
	if Technique(99).String() == "" {
		t.Error("unknown technique has empty name")
	}
	for _, r := range []GridRole{RoleDiagonal, RoleLowerDiagonal, RoleDuplicate, RoleExtraLayer1, RoleExtraLayer2, GridRole(99)} {
		if r.String() == "" {
			t.Errorf("role %d has empty name", int(r))
		}
	}
}

// TestParallelCombineMatchesSerial: the default parallel gather-scatter
// combination and the serial reference produce the same combined solution
// (up to summation-order rounding in the Reduce).
func TestParallelCombineMatchesSerial(t *testing.T) {
	for _, tech := range []Technique{CheckpointRestart, ResamplingCopying, AlternateCombination} {
		par := fastCfg(tech)
		ser := fastCfg(tech)
		ser.SerialCombine = true
		pr, err := Run(par)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := Run(ser)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(pr.L1Error - sr.L1Error); d > 1e-12 {
			t.Errorf("%v: parallel combine error %.17g vs serial %.17g (diff %g)",
				tech, pr.L1Error, sr.L1Error, d)
		}
	}
}

// TestParallelCombineWithLossesMatchesSerial repeats the comparison under
// simulated losses, covering the recovered-coefficient path.
func TestParallelCombineWithLossesMatchesSerial(t *testing.T) {
	for _, tech := range []Technique{ResamplingCopying, AlternateCombination} {
		par := fastCfg(tech)
		par.NumFailures = 2
		par.Seed = 41
		ser := par
		ser.SerialCombine = true
		pr, err := Run(par)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := Run(ser)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(pr.L1Error - sr.L1Error); d > 1e-12 {
			t.Errorf("%v with losses: parallel %.17g vs serial %.17g", tech, pr.L1Error, sr.L1Error)
		}
	}
}

// TestParallelCombineFaster: the gather-scatter combination's virtual
// combine time beats the ship-everything-to-rank-0 baseline.
func TestParallelCombineFaster(t *testing.T) {
	par := fastCfg(CheckpointRestart)
	ser := par
	ser.SerialCombine = true
	pr, err := Run(par)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Run(ser)
	if err != nil {
		t.Fatal(err)
	}
	if pr.CombineTime >= sr.CombineTime {
		t.Errorf("parallel combine %g s not below serial %g s", pr.CombineTime, sr.CombineTime)
	}
}

// TestTraceTimeline: a real-failure run emits the protocol phases in causal
// order — repair before data recovery before combination.
func TestTraceTimeline(t *testing.T) {
	rec := trace.New(nil)
	cfg := fastCfg(AlternateCombination)
	cfg.NumFailures = 2
	cfg.RealFailures = true
	cfg.Trace = rec
	cfg.Seed = 43
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	phases := rec.Phases()
	idx := map[string]int{}
	for i, ph := range phases {
		idx[ph] = i + 1
	}
	for _, ph := range []string{"respawn", "repair", "recover-data", "combine"} {
		if idx[ph] == 0 {
			t.Fatalf("phase %q missing from timeline %v", ph, phases)
		}
	}
	if !(idx["repair"] < idx["recover-data"] && idx["recover-data"] < idx["combine"]) {
		t.Errorf("phase order wrong: %v", phases)
	}
	if rec.Count("respawn") != 2 {
		t.Errorf("respawn events = %d, want 2", rec.Count("respawn"))
	}
}

// TestTraceCheckpointEvents: a CR run records one event per checkpoint.
func TestTraceCheckpointEvents(t *testing.T) {
	rec := trace.New(nil)
	cfg := fastCfg(CheckpointRestart)
	cfg.Trace = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Count("checkpoint"); got != res.CheckpointWrites {
		t.Errorf("checkpoint events %d != writes %d", got, res.CheckpointWrites)
	}
}

// TestMultiEventFailures: two separate failure events at different steps,
// each followed by its own detection and reconstruction, must both be
// survived — and under CR the final solution stays bitwise exact.
func TestMultiEventFailures(t *testing.T) {
	base := fastCfg(CheckpointRestart)
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(nil)
	cfg := base
	cfg.RealFailures = true
	cfg.FailSchedule = []faultgen.Event{{Step: 10, Failures: 1}, {Step: 40, Failures: 2}}
	cfg.Trace = rec
	cfg.Seed = 47
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spawned != 3 {
		t.Fatalf("spawned %d, want 3 across two events", res.Spawned)
	}
	if res.L1Error != clean.L1Error {
		t.Errorf("multi-event CR error %.17g != clean %.17g", res.L1Error, clean.L1Error)
	}
	if got := rec.Count("repair"); got != 2 {
		t.Errorf("repair events = %d, want 2 (one per failure event)", got)
	}
}

// TestMultiEventFailuresAC: the same schedule under Alternate Combination
// (single detection at the end sees both events' victims).
func TestMultiEventFailuresAC(t *testing.T) {
	cfg := fastCfg(AlternateCombination)
	cfg.RealFailures = true
	cfg.FailSchedule = []faultgen.Event{{Step: 10, Failures: 1}, {Step: 40, Failures: 1}}
	cfg.Seed = 53
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spawned != 2 {
		t.Fatalf("spawned %d, want 2", res.Spawned)
	}
	if res.L1Error <= 0 || res.L1Error > 0.1 {
		t.Errorf("error %g after multi-event AC run", res.L1Error)
	}
}

// TestFailScheduleValidation covers the config checks.
func TestFailScheduleValidation(t *testing.T) {
	cfg := fastCfg(CheckpointRestart)
	cfg.FailSchedule = []faultgen.Event{{Step: 1, Failures: 1}}
	if _, err := Run(cfg); err == nil {
		t.Error("schedule without RealFailures accepted")
	}
	cfg.RealFailures = true
	cfg.FailSchedule = []faultgen.Event{{Step: 0, Failures: 1}}
	if _, err := Run(cfg); err == nil {
		t.Error("step 0 accepted")
	}
	cfg.FailSchedule = []faultgen.Event{{Step: 40, Failures: 1}, {Step: 10, Failures: 1}}
	if _, err := Run(cfg); err == nil {
		t.Error("decreasing schedule accepted")
	}
}

// TestDecomp2DMatches1D: the 2D block decomposition must produce the same
// combined solution as the 1D row decomposition (bitwise — the stencil
// arithmetic per cell is identical, only ownership differs).
func TestDecomp2DMatches1D(t *testing.T) {
	for _, tech := range []Technique{CheckpointRestart, AlternateCombination} {
		one := fastCfg(tech)
		two := fastCfg(tech)
		two.Decomp2D = true
		r1, err := Run(one)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(two)
		if err != nil {
			t.Fatalf("%v 2D: %v", tech, err)
		}
		if r1.L1Error != r2.L1Error {
			t.Errorf("%v: 2D error %.17g != 1D %.17g", tech, r2.L1Error, r1.L1Error)
		}
	}
}

// TestDecomp2DSurvivesFailure: real failures recover under the 2D
// decomposition too (CR stays exact).
func TestDecomp2DSurvivesFailure(t *testing.T) {
	clean := fastCfg(CheckpointRestart)
	clean.Decomp2D = true
	cr, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	cfg := clean
	cfg.NumFailures = 2
	cfg.RealFailures = true
	cfg.Seed = 59
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spawned != 2 {
		t.Fatalf("spawned %d", res.Spawned)
	}
	if res.L1Error != cr.L1Error {
		t.Errorf("2D CR with failures %.17g != clean %.17g", res.L1Error, cr.L1Error)
	}
}

// TestMultiEventFailuresRC: under RC, both events' victims surface together
// at the end-of-run detection; the cross-event conflict constraint keeps
// every lost grid's recovery partner alive.
func TestMultiEventFailuresRC(t *testing.T) {
	cfg := fastCfg(ResamplingCopying)
	cfg.RealFailures = true
	cfg.FailSchedule = []faultgen.Event{{Step: 10, Failures: 1}, {Step: 30, Failures: 1}}
	cfg.Seed = 61
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spawned != 2 {
		t.Fatalf("spawned %d", res.Spawned)
	}
	if res.L1Error <= 0 || res.L1Error > 0.1 {
		t.Errorf("error %g after RC multi-event run", res.L1Error)
	}
}
