package core

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"testing"

	"ftsg/internal/checkpoint"
	"ftsg/internal/metrics"
	"ftsg/internal/trace"
	"ftsg/internal/vtime"
)

// ckptChaosCfg is a CR run with real failures and an MTBF small enough to
// force several interior checkpoints, so the recovery path actually reads
// the store back.
func ckptChaosCfg() Config {
	cfg := fastCfg(CheckpointRestart)
	cfg.NumFailures = 1
	cfg.RealFailures = true
	cfg.Seed = 5
	// Target a checkpoint interval of ~8 steps via Young's formula:
	// sqrt(2*mtbf*tio)/stepTime = 8  =>  mtbf = (8*stepTime)^2 / (2*tio).
	stepTime := cfg.WithDefaults().EstimateStepTime()
	cfg.MTBF = math.Pow(8*stepTime, 2) / (2 * cfg.Machine.TIOWrite)
	return cfg
}

// ckptFingerprint runs one CR configuration and folds everything observable
// into a string: total virtual time bits, L1 bits, the full metrics
// summary, and the full Chrome trace export.
func ckptFingerprint(t *testing.T, cfg Config) string {
	t.Helper()
	reg := metrics.New()
	rec := trace.New(nil)
	cfg.Metrics = reg
	cfg.Trace = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "total=%016x l1=%016x writes=%d\n",
		math.Float64bits(res.TotalTime), math.Float64bits(res.L1Error), res.CheckpointWrites)
	reg.WriteSummary(&b)
	if err := rec.ExportChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestCheckpointAsyncDeterminism pins the tentpole's core guarantee: a CR
// run with real failures produces bit-identical results — virtual time, L1
// error, every metric, the whole trace — with the write-behind writer on or
// off, on either backend, across GOMAXPROCS settings. The async writer may
// only change wall-clock behaviour, never anything observable.
func TestCheckpointAsyncDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := ckptChaosCfg()
	var want string
	for _, procs := range []int{1, runtime.NumCPU()} {
		prev := runtime.GOMAXPROCS(procs)
		for _, backend := range []string{"dir", "mem"} {
			for _, async := range []bool{false, true} {
				cfg := base
				cfg.CheckpointBackend = backend
				cfg.CheckpointAsync = async
				got := ckptFingerprint(t, cfg)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					runtime.GOMAXPROCS(prev)
					t.Fatalf("fingerprint diverged at GOMAXPROCS=%d backend=%s async=%v", procs, backend, async)
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestCRRecoversFromCorruptCheckpoints is the end-to-end regression for the
// old hard-fail: with every backend read corrupted, a CR run with a real
// failure must still complete — falling back through generations to the
// initial condition — and converge to the same solution as the clean run.
func TestCRRecoversFromCorruptCheckpoints(t *testing.T) {
	clean := ckptChaosCfg()
	ref, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.New()
	cfg := ckptChaosCfg()
	cfg.Metrics = reg
	cfg.CheckpointFaults = &checkpoint.FaultPlan{Seed: 7, ReadCorrupt: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("CR run failed outright on corrupt checkpoints: %v", err)
	}
	// Every restore fell back to the initial condition and recomputed, so
	// the final solution must be bit-identical to the clean run's.
	if res.L1Error != ref.L1Error {
		t.Errorf("L1 = %g, want clean run's %g", res.L1Error, ref.L1Error)
	}
	if got := reg.Counter("checkpoint.generations.fallback").Value(); got == 0 {
		t.Error("fallback counter is 0; the corrupt-read path never ran")
	}
	// The full-recompute path costs more virtual time than a checkpoint
	// restore would have.
	if res.TotalTime < ref.TotalTime {
		t.Errorf("corrupt run total %g below clean run %g", res.TotalTime, ref.TotalTime)
	}
}

// TestCRSurvivesWriteErrors: injected backend write failures (including
// torn writes) must never fail the run — recovery reads fall back past
// them.
func TestCRSurvivesWriteErrors(t *testing.T) {
	reg := metrics.New()
	cfg := ckptChaosCfg()
	cfg.Metrics = reg
	cfg.CheckpointGenerations = 3
	cfg.CheckpointFaults = &checkpoint.FaultPlan{Seed: 11, WriteErr: 0.5, WriteShort: 0.3}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("run failed under write faults: %v", err)
	}
	if res.L1Error <= 0 || res.L1Error > 0.05 {
		t.Errorf("L1 error %g out of range", res.L1Error)
	}
	if got := reg.Counter("checkpoint.write.errors").Value(); got == 0 {
		t.Error("write-error counter is 0; WriteErr=0.5 never fired")
	}
}

// TestFlushSpanEmitted: the repair path runs the checkpoint flush barrier
// under a ckpt-flush trace span, in sync and async mode alike.
func TestFlushSpanEmitted(t *testing.T) {
	for _, async := range []bool{false, true} {
		rec := trace.New(nil)
		cfg := ckptChaosCfg()
		cfg.Trace = rec
		cfg.CheckpointAsync = async
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		if rec.SpanCount("ckpt-flush") == 0 {
			t.Errorf("async=%v: no ckpt-flush span recorded", async)
		}
	}
}

// TestMemBackendMatchesDirResult: the in-memory backend must be a drop-in
// replacement — bit-identical results to the dir backend.
func TestMemBackendMatchesDirResult(t *testing.T) {
	cfg := ckptChaosCfg()
	dir, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CheckpointBackend = "mem"
	mem, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dir.TotalTime != mem.TotalTime || dir.L1Error != mem.L1Error ||
		dir.CheckpointWrites != mem.CheckpointWrites {
		t.Errorf("mem backend diverged: total %v vs %v, l1 %v vs %v, writes %d vs %d",
			mem.TotalTime, dir.TotalTime, mem.L1Error, dir.L1Error,
			mem.CheckpointWrites, dir.CheckpointWrites)
	}
}

// TestGenerationsConfigValidated: config-level validation of the new knobs.
func TestGenerationsConfigValidated(t *testing.T) {
	cfg := fastCfg(CheckpointRestart)
	cfg.CheckpointBackend = "s3"
	if _, err := Run(cfg); err == nil {
		t.Error("unknown backend accepted")
	}
	cfg = fastCfg(CheckpointRestart)
	cfg.CheckpointFaults = &checkpoint.FaultPlan{ReadCorrupt: 1.5}
	if _, err := Run(cfg); err == nil {
		t.Error("out-of-range fault probability accepted")
	}
	cfg = fastCfg(CheckpointRestart)
	cfg.CheckpointGenerations = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative generation count accepted")
	}
}

// TestRaijinStillFasterWithMem sanity-checks that backend choice composes
// with machine profiles: vtime.Raijin stays cheaper than OPL on the mem
// backend too (the accounting is simulated, not real I/O).
func TestRaijinStillFasterWithMem(t *testing.T) {
	opl := ckptChaosCfg()
	opl.CheckpointBackend = "mem"
	raijin := ckptChaosCfg()
	raijin.CheckpointBackend = "mem"
	raijin.Machine = vtime.Raijin()
	ro, err := Run(opl)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(raijin)
	if err != nil {
		t.Fatal(err)
	}
	if rr.TotalTime >= ro.TotalTime {
		t.Errorf("Raijin total %g not below OPL %g", rr.TotalTime, ro.TotalTime)
	}
}
