package core

import (
	"errors"
	"fmt"
	"log/slog"

	"ftsg/internal/checkpoint"
	"ftsg/internal/combine"
	"ftsg/internal/grid"
	"ftsg/internal/metrics"
	"ftsg/internal/mpi"
	"ftsg/internal/pde"
	"ftsg/internal/recovery"
	"ftsg/internal/telemetry"
)

// The application on the event-driven MPI path (Config.Event): eventEntry is
// entry/rank in continuation-passing style, built on the mpi.Fiber*,
// recovery.Fiber* and pde.FiberSolver twins. Every phase runs in the same
// order with the same trace spans, journal entries, invariant checks and
// Result writes as the goroutine path, and every twin preserves its blocking
// original's virtual-time behaviour, so the two paths produce byte-identical
// Results — including runs with real failures repaired by any of the four
// recovery modes, with respawned replacements and claimed spares attaching
// back as fibers. fiberRank holds what the blocking rank() keeps in locals;
// the phase methods chain through continuations instead of returning.

// eventEntry is entry for fiber code (mpi.Options.EventEntry).
func (rs *runState) eventEntry(p *mpi.Proc, f *mpi.Fiber) {
	fr := &fiberRank{rs: rs, p: p, f: f, cfg: rs.cfg}
	fr.done = func(err error) {
		if err == nil || errors.Is(err, recovery.ErrOrphaned) {
			// As on the goroutine path: an orphaned replacement exits cleanly.
			return
		}
		rs.dumpFlight(fmt.Sprintf("rank %d abort", p.WorldRank()))
		panic(fmt.Sprintf("core: world rank %d: %v", p.WorldRank(), err))
	}
	fr.begin()
}

// fiberRank is one simulated rank's program state on the event path — the
// locals of the blocking rank(), lifted so parked continuations can resume
// them.
type fiberRank struct {
	rs   *runState
	p    *mpi.Proc
	f    *mpi.Fiber
	cfg  Config
	done func(error) // final continuation; runs exactly once

	charge      func(cells int)
	journal     *telemetry.Journal
	repairVec   *metrics.TimeSumVec
	advanceVec  *metrics.TimeSumVec
	replacement bool

	world      *mpi.Comm
	rank, cur  int
	failedList []int
	epoch      int
	myStats    recovery.Stats
	mc         *modeCtx
	mine       SubGrid

	gcomm  *mpi.Comm
	solver pde.FiberSolver

	opHook         mpi.OpHook
	gridLost       bool
	detectOverhead float64
	stateBuf       []float64
	dps            []int
}

// begin is rank()'s prologue: instrument, classify (fresh rank, respawned
// replacement, claimed spare), and attach replacements through the fiber
// recovery protocol.
func (fr *fiberRank) begin() {
	rs, p, cfg := fr.rs, fr.p, fr.cfg
	fr.charge = func(cells int) { p.ComputeCells(cells, cfg.ComputeScale) }
	fr.journal = cfg.Journal
	fr.repairVec = rs.reg.TimeSumVec("rank.vtime.repair")
	fr.advanceVec = rs.reg.TimeSumVec("rank.vtime.advance")
	fr.replacement = p.Parent() != nil
	fr.myStats = recovery.Stats{Trace: cfg.Trace, Metrics: rs.reg}
	if cfg.RecoveryMode != recovery.ModeSpawn {
		fr.mc = newModeCtx(cfg.RecoveryMode, cfg.NumProcs())
		fr.myStats.ModeLabel = cfg.RecoveryMode.String()
	}
	fr.dps = rs.detectionPoints()

	if !fr.replacement {
		fr.world = p.World()
		fr.rank = fr.world.Rank()
		fr.setup()
		return
	}
	tAttach := p.Now()
	afterAttach := func() {
		fr.epoch = 1
		fr.repairVec.At(fr.rank).Add(p.Now() - tAttach)
		fr.setup()
	}
	if fr.mc == nil {
		recovery.FiberReconstructPlaced(p, fr.f, nil, p.Parent(), &fr.myStats, rs.place, func(w *mpi.Comm, r int, err error) {
			if err != nil {
				fr.done(err)
				return
			}
			fr.world, fr.rank = w, r
			afterAttach()
		})
		return
	}
	// A claimed spare (substitute mode): attach through the mode-aware
	// protocol, then learn everything else — including which original rank it
	// replaces — from rank 0's broadcast.
	recovery.FiberReconstructMode(p, fr.f, nil, p.Parent(), &fr.myStats, rs.place, cfg.RecoveryMode, nil, func(mr *recovery.ModeResult, err error) {
		if err != nil {
			fr.done(err)
			return
		}
		fr.world = mr.Comm
		fiberSyncRecoveryInfoMode(fr.f, fr.world, 0, nil, nil, nil, func(cur int, failed, aband, origOf []int, serr error) {
			if serr != nil {
				fr.done(serr)
				return
			}
			fr.cur, fr.failedList = cur, failed
			fr.mc.adopt(origOf, aband, failed)
			fr.rank = fr.mc.origOf[fr.world.Rank()]
			afterAttach()
		})
	})
}

// setup resolves the rank's sub-grid, builds the group communicator and
// solver, and — for replacements — rejoins the survivors (recovery-info
// sync, checkpoint flush, data recovery), then starts the main loop.
func (fr *fiberRank) setup() {
	rs, p, cfg := fr.rs, fr.p, fr.cfg
	mine, err := gridOfRank(rs.grids, fr.rank)
	if err != nil {
		fr.done(err)
		return
	}
	fr.mine = mine

	if !fr.replacement {
		fr.build(fr.world, func(err error) {
			if err != nil {
				fr.done(err)
				return
			}
			fr.startLoop()
		})
		return
	}
	afterSync := func() {
		// Invariant: this replacement adopted its predecessor's (original)
		// rank, so that rank must be in the failed list rank 0 announced.
		if !containsInt(fr.failedList, fr.rank) {
			fr.done(fmt.Errorf("core: replacement adopted rank %d but rank 0 announced failed ranks %v", fr.rank, fr.failedList))
			return
		}
		cfg.Trace.Emit(p.Now(), fr.rank, "respawn",
			"replacement world id %d attached on host %d, rejoining at step %d",
			p.WorldRank(), p.Host(), fr.cur)
		fr.journal.Emit(p.Now(), fr.rank, fr.epoch, "respawn",
			slog.Int("step", fr.cur), slog.Int("world_id", p.WorldRank()), slog.Int("host", p.Host()))
		fr.build(fr.world, func(err error) {
			if err != nil {
				fr.done(err)
				return
			}
			rs.flushCheckpoints(p, fr.rank, fr.cur)
			fr.recoverData(fr.failedList, fr.cur, rs.activeRecoverIDs(fr.mc, fr.failedList), func(err error) {
				if err != nil {
					fr.done(err)
					return
				}
				rs.mergeStats(&fr.myStats, fr.failedList)
				fr.startLoop()
			})
		})
	}
	if fr.mc == nil {
		fiberSyncRecoveryInfo(fr.f, fr.world, 0, nil, func(cur int, failed []int, err error) {
			if err != nil {
				fr.done(err)
				return
			}
			fr.cur, fr.failedList = cur, failed
			afterSync()
		})
		return
	}
	// Substitute children already ran their broadcast above, alongside the
	// attach.
	afterSync()
}

// build is rank()'s build closure: split the world by sub-grid and construct
// the solver. Decomp2D is rejected in event mode (Config.Validate), so the
// solver is always the fiber-capable 1D ParallelSolver.
func (fr *fiberRank) build(w *mpi.Comm, k func(error)) {
	mpi.FiberSplit(fr.f, w, fr.mine.ID, fr.rank, func(gc *mpi.Comm, err error) {
		if err != nil {
			k(fmt.Errorf("group split: %w", err))
			return
		}
		s, err := pde.NewParallelSolver(gc, fr.rs.prob, fr.mine.Lv, fr.rs.dt)
		if err != nil {
			k(err)
			return
		}
		s.SetCharge(fr.charge)
		fr.gcomm, fr.solver = gc, s
		k(nil)
	})
}

// startLoop arms the op-granularity fault hook (survivors only) and enters
// the detection-interval loop.
func (fr *fiberRank) startLoop() {
	if !fr.replacement {
		fr.opHook = fr.rs.opPlan.Hook(fr.p, fr.rank)
	}
	fr.gridLost = fr.mc != nil && fr.mc.abandoned[fr.mine.ID]
	fr.nextDP(0)
}

// nextDP runs one detection interval: solve to the detection point, then
// detect (and repair if needed).
func (fr *fiberRank) nextDP(i int) {
	if i >= len(fr.dps) {
		fr.finish()
		return
	}
	dp := fr.dps[i]
	if dp <= fr.cur {
		fr.nextDP(i + 1)
		return
	}
	rs, p, cfg := fr.rs, fr.p, fr.cfg
	if fr.opHook != nil {
		p.SetOpHook(fr.opHook)
	}
	tSolve := p.Now()
	solveSpan := cfg.Trace.BeginSpan(tSolve, fr.rank, "solve", "steps %d..%d", fr.cur+1, dp)
	var stepLoop func(s int)
	stepLoop = func(s int) {
		if s > dp {
			solveSpan.End(p.Now())
			fr.advanceVec.At(fr.rank).Add(p.Now() - tSolve)
			fr.cur = dp
			fr.detect(i, dp)
			return
		}
		if !fr.replacement && rs.plan != nil {
			if fr.journal != nil {
				if at, ok := rs.plan.DeathStep(fr.rank); ok && at == s {
					fr.journal.Emit(p.Now(), fr.rank, fr.epoch, "fault-inject", slog.Int("step", s))
				}
			}
			rs.plan.Poll(p, fr.rank, s)
		}
		if fr.gridLost {
			stepLoop(s + 1)
			return
		}
		fr.solver.FiberStep(fr.f, func(err error) {
			if err != nil {
				// A group member died mid-solve: revoke the group
				// communicators so blocked peers stop too, abandon the grid,
				// and wait for global detection.
				fr.gridLost = true
				_ = fr.solver.GroupComm().Revoke()
				_ = fr.gcomm.Revoke()
			}
			stepLoop(s + 1)
		})
	}
	stepLoop(fr.cur + 1)
}

// detect runs the detection point's reconstruct round and dispatches to the
// repaired-world path or the checkpoint write.
func (fr *fiberRank) detect(i, dp int) {
	rs, p, cfg := fr.rs, fr.p, fr.cfg
	tRepair := p.Now()
	st := &recovery.Stats{Trace: cfg.Trace, Metrics: rs.reg, ModeLabel: fr.myStats.ModeLabel}
	after := func(newWorld *mpi.Comm, newRank int, mr *recovery.ModeResult, err error) {
		if fr.opHook != nil {
			p.SetOpHook(nil)
		}
		if err != nil {
			fr.done(err)
			return
		}
		fr.repairVec.At(fr.rank).Add(p.Now() - tRepair)
		if st.ReconstructTime > 0 {
			fr.repaired(i, dp, st, newWorld, newRank, mr)
			return
		}
		fr.detectOverhead += st.ListTime
		if cfg.Technique == CheckpointRestart && dp < cfg.Steps && !fr.gridLost {
			fr.stateBuf = pde.AppendState(fr.solver, fr.stateBuf[:0])
			ckSpan := cfg.Trace.BeginSpan(p.Now(), fr.rank, "checkpoint", "write step %d", dp)
			err := rs.store.Write(p, fr.mine.ID, fr.gcomm.Rank(), dp, fr.stateBuf)
			ckSpan.End(p.Now())
			if err != nil {
				fr.done(err)
				return
			}
			if fr.rank == 0 {
				rs.mu.Lock()
				rs.res.CheckpointWrites++
				rs.mu.Unlock()
				cfg.Trace.Emit(p.Now(), fr.rank, "checkpoint", "checkpoint written at step %d", dp)
				fr.journal.Emit(p.Now(), fr.rank, fr.epoch, "checkpoint-commit", slog.Int("step", dp))
			}
		}
		fr.nextDP(i + 1)
	}
	if fr.mc == nil {
		recovery.FiberReconstructPlaced(p, fr.f, fr.world, nil, st, rs.place, func(w *mpi.Comm, r int, err error) {
			after(w, r, nil, err)
		})
		return
	}
	recovery.FiberReconstructMode(p, fr.f, fr.world, nil, st, rs.place, cfg.RecoveryMode, fr.mc.origOf, func(mr *recovery.ModeResult, err error) {
		if err != nil {
			after(nil, 0, nil, err)
			return
		}
		after(mr.Comm, mr.Rank, mr, nil)
	})
}

// repaired handles a detection point where a failure was repaired: verify the
// protocol's promises, sync the recovery info, rebuild the solver, recover
// the lost data — the blocking rank()'s st.ReconstructTime > 0 branch.
func (fr *fiberRank) repaired(i, dp int, st *recovery.Stats, newWorld *mpi.Comm, newRank int, mr *recovery.ModeResult) {
	rs, cfg := fr.rs, fr.cfg
	if fr.mc == nil {
		if newRank != fr.rank {
			fr.done(fmt.Errorf("core: repaired communicator moved rank %d to %d", fr.rank, newRank))
			return
		}
		if newWorld.Size() != fr.world.Size() {
			fr.done(fmt.Errorf("core: repaired communicator size %d, want %d", newWorld.Size(), fr.world.Size()))
			return
		}
		fr.world, fr.rank = newWorld, newRank
		fiberSyncRecoveryInfo(fr.f, fr.world, dp, st.FailedRanks, func(_ int, failed []int, err error) {
			if err != nil {
				fr.done(err)
				return
			}
			fr.failedList = failed
			// Invariant: every survivor derived the failed-rank list locally
			// (Fig. 6 group algebra); it must agree with rank 0's broadcast.
			if !equalInts(fr.failedList, st.FailedRanks) {
				fr.done(fmt.Errorf("core: rank %d derived failed ranks %v but rank 0 announced %v", fr.rank, st.FailedRanks, fr.failedList))
				return
			}
			fr.afterRepairSync(i, dp, st, nil)
		})
		return
	}
	if newWorld.Size() != len(mr.OrigOf) {
		fr.done(fmt.Errorf("core: repaired communicator size %d but position map covers %d", newWorld.Size(), len(mr.OrigOf)))
		return
	}
	if mr.OrigOf[newRank] != fr.rank {
		fr.done(fmt.Errorf("core: repaired communicator position %d holds original rank %d, want %d", newRank, mr.OrigOf[newRank], fr.rank))
		return
	}
	if cfg.RecoveryMode == recovery.ModeSubstitute && mr.Fallbacks == 0 {
		if newWorld.Size() != fr.world.Size() {
			fr.done(fmt.Errorf("core: substitute repair changed communicator size %d -> %d", fr.world.Size(), newWorld.Size()))
			return
		}
	} else if newWorld.Size() >= fr.world.Size() {
		fr.done(fmt.Errorf("core: %v repair did not shrink the communicator (%d -> %d)", cfg.RecoveryMode, fr.world.Size(), newWorld.Size()))
		return
	}
	fr.world = newWorld // rank keeps its original identity
	fr.mc.fallbacks += mr.Fallbacks
	recoverIDs := rs.applyEvent(fr.mc, mr.OrigOf, st.FailedRanks)
	fiberSyncRecoveryInfoMode(fr.f, fr.world, dp, st.FailedRanks, fr.mc.abandonedList(), fr.mc.origOf, func(_ int, failed, aband, origOf []int, err error) {
		if err != nil {
			fr.done(err)
			return
		}
		fr.failedList = failed
		// Invariants: the locally derived failed list, position map and
		// abandoned set must all agree with rank 0's broadcast — every
		// survivor folded the same event into the same prior state.
		if !equalInts(fr.failedList, st.FailedRanks) {
			fr.done(fmt.Errorf("core: rank %d derived failed ranks %v but rank 0 announced %v", fr.rank, st.FailedRanks, fr.failedList))
			return
		}
		if !equalInts(origOf, fr.mc.origOf) {
			fr.done(fmt.Errorf("core: rank %d derived position map %v but rank 0 announced %v", fr.rank, fr.mc.origOf, origOf))
			return
		}
		if !equalInts(aband, fr.mc.abandonedList()) {
			fr.done(fmt.Errorf("core: rank %d derived abandoned grids %v but rank 0 announced %v", fr.rank, fr.mc.abandonedList(), aband))
			return
		}
		fr.afterRepairSync(i, dp, st, recoverIDs)
	})
}

// afterRepairSync finishes a repaired detection point: trace/journal the
// repair, rebuild the solver on the new world, restore or recover the state,
// and continue the loop.
func (fr *fiberRank) afterRepairSync(i, dp int, st *recovery.Stats, recoverIDs []int) {
	rs, p, cfg := fr.rs, fr.p, fr.cfg
	if fr.rank == 0 {
		cfg.Trace.Emit(p.Now(), fr.rank, "repair",
			"failed ranks %v repaired at step %d (shrink %.2fs, spawn %.2fs, merge %.3fs, agree %.2fs, split %.3fs)",
			fr.failedList, dp, st.ShrinkTime, st.SpawnTime, st.MergeTime, st.AgreeTime, st.SplitTime)
		if fr.journal != nil {
			fr.journal.Emit(p.Now(), fr.rank, fr.epoch, "failure-detected",
				slog.Int("step", dp), slog.String("failed", fmt.Sprint(fr.failedList)))
			for _, ph := range []struct {
				name    string
				seconds float64
			}{
				{"detect", st.ListTime}, {"shrink", st.ShrinkTime},
				{"spawn", st.SpawnTime}, {"merge", st.MergeTime},
				{"agree", st.AgreeTime}, {"split", st.SplitTime},
			} {
				fr.journal.Emit(p.Now(), fr.rank, fr.epoch, "repair-phase",
					slog.String("phase", ph.name), slog.Float64("seconds", ph.seconds),
					slog.Int("step", dp))
			}
		}
	}
	fr.epoch++
	oldState, oldStep := fr.solver.State(), fr.solver.Steps()
	fr.build(fr.world, func(err error) {
		if err != nil {
			fr.done(err)
			return
		}
		// Carry the pre-repair state into the rebuilt solver — same
		// restorable rule as the blocking path.
		restorable := !fr.gridLost
		if fr.mc != nil {
			restorable = !containsInt(rs.lostGridIDs(fr.failedList), fr.mine.ID) && !fr.mc.abandoned[fr.mine.ID]
		}
		if restorable {
			if err := fr.solver.Restore(oldStep, oldState); err != nil {
				fr.done(err)
				return
			}
		}
		rs.flushCheckpoints(p, fr.rank, dp)
		fr.recoverData(fr.failedList, dp, recoverIDs, func(err error) {
			if err != nil {
				fr.done(err)
				return
			}
			rs.mergeStats(st, fr.failedList)
			fr.gridLost = fr.mc != nil && fr.mc.abandoned[fr.mine.ID]
			fr.nextDP(i + 1)
		})
	})
}

// finish is rank()'s epilogue: simulated-loss recovery, result reporting and
// the combination phase.
func (fr *fiberRank) finish() {
	rs, cfg := fr.rs, fr.cfg
	afterSim := func(err error) {
		if err != nil {
			fr.done(err)
			return
		}
		rs.mu.Lock()
		if fr.detectOverhead > rs.res.DetectOverhead {
			rs.res.DetectOverhead = fr.detectOverhead
		}
		rs.mu.Unlock()
		if fr.mc != nil && fr.world.Rank() == 0 {
			rs.mu.Lock()
			rs.res.FinalProcs = fr.world.Size()
			rs.res.Survivors = append([]int(nil), fr.mc.origOf...)
			rs.res.RepairFallbacks = fr.mc.fallbacks
			rs.res.AbandonedGrids = fr.mc.abandonedList()
			if frk := fr.mc.failedRanks(); len(frk) > 0 {
				rs.res.FailedRanks = frk
				rs.res.LostGrids = rs.lostGridIDs(frk)
			}
			rs.mu.Unlock()
		}
		fr.combinePhase()
	}
	// Simulated failures (Figs. 9/10 mode): whole grids are assumed lost at
	// the end, without killing processes. Spawn-only, so mc is nil here.
	if !cfg.RealFailures && len(rs.simLost) > 0 {
		fr.recoverData(nil, cfg.Steps, nil, afterSim)
		return
	}
	afterSim(nil)
}

// recoverData is rs.recoverData in CPS: restore the data of lost sub-grids
// at the given step using the configured technique.
func (fr *fiberRank) recoverData(failedRanks []int, atStep int, recoverIDs []int, k func(error)) {
	rs, p, cfg := fr.rs, fr.p, fr.cfg
	world, mc := fr.world, fr.mc
	lost := rs.lostGridIDs(failedRanks)
	if mc != nil {
		lost = recoverIDs
	}
	if len(lost) == 0 {
		k(nil)
		return
	}
	if world.Rank() == 0 {
		cfg.Trace.Emit(p.Now(), 0, "recover-data", "%v recovery of sub-grids %v at step %d",
			cfg.Technique, lost, atStep)
	}
	t0 := p.Now()
	sp := cfg.Trace.BeginSpan(t0, traceRank(world, mc), "recover-data", "%v, sub-grids %v", cfg.Technique, lost)
	done := func(err error) {
		sp.End(p.Now())
		rs.mu.Lock()
		if d := p.Now() - t0; d > rs.res.DataRecoveryTime {
			rs.res.DataRecoveryTime = d
		}
		if len(rs.res.LostGrids) == 0 {
			rs.res.LostGrids = append([]int(nil), lost...)
		}
		rs.mu.Unlock()
		k(err)
	}
	switch cfg.Technique {
	case CheckpointRestart:
		fr.recoverCR(lost, atStep, done)
	case ResamplingCopying:
		fr.recoverRC(lost, atStep, done)
	case AlternateCombination:
		// No data movement: the combination-phase coefficients are recomputed
		// over the survivors; lost grids simply do not contribute.
		done(nil)
	default:
		done(fmt.Errorf("core: unknown technique %v", cfg.Technique))
	}
}

// recoverCR is recoverData's Checkpoint/Restart branch in CPS: negotiate the
// newest group-wide readable checkpoint, restore, recompute to atStep.
func (fr *fiberRank) recoverCR(lost []int, atStep int, k func(error)) {
	rs, p, f, cfg := fr.rs, fr.p, fr.f, fr.cfg
	world, gcomm, solver, mine, mc := fr.world, fr.gcomm, fr.solver, fr.mine, fr.mc
	if !containsInt(lost, mine.ID) {
		k(nil)
		return
	}
	recompute := func() {
		solver.FiberRun(f, atStep-solver.Steps(), func(err error) {
			if err != nil {
				k(fmt.Errorf("core: CR recompute: %w", err))
				return
			}
			k(nil)
		})
	}
	fromIC := func() error {
		if gcomm.Rank() == 0 {
			cfg.Journal.Emit(p.Now(), world.Rank(), fr.epoch, "checkpoint-restore",
				slog.Int("grid", mine.ID), slog.Int("step", 0))
		}
		ic := grid.NewPooled(mine.Lv)
		ic.Fill(rs.prob.U0)
		rerr := solver.SetFromGrid(ic, 0)
		ic.Free()
		return rerr
	}
	if mc != nil && mc.holed(mine) {
		// A shrunken group: the surviving checkpoints cannot be read back into
		// the smaller solver. Recompute from the initial condition.
		if err := fromIC(); err != nil {
			k(err)
			return
		}
		recompute()
		return
	}
	// The same group-wide negotiation as the blocking path: exchange
	// candidate steps, verify the full read everywhere, fall back
	// generation-by-generation past damage.
	cand := rs.store.CandidateSteps(mine.ID, gcomm.Rank())
	var negotiate func()
	negotiate = func() {
		fiberAgreeRestoreStep(f, gcomm, cand, rs.store.Generations(), func(step int, err error) {
			if err != nil {
				k(fmt.Errorf("core: CR restore: %w", err))
				return
			}
			if step == 0 {
				if err := fromIC(); err != nil {
					k(err)
					return
				}
				recompute()
				return
			}
			data, rerr := rs.store.ReadAt(p, mine.ID, gcomm.Rank(), step)
			ok := int64(1)
			if rerr != nil {
				if !errors.Is(rerr, checkpoint.ErrNoCheckpoint) {
					k(fmt.Errorf("core: CR restore: %w", rerr))
					return
				}
				ok = 0
			}
			if rerr == nil && mc != nil && len(data) != len(solver.State()) {
				// A checkpoint written under a different group shape: treat it
				// like damage and fall back to an older common step.
				ok = 0
			}
			mpi.FiberAllreduce(f, gcomm, []int64{ok}, mpi.MinOp, func(allOK []int64, aerr error) {
				if aerr != nil {
					k(fmt.Errorf("core: CR restore: %w", aerr))
					return
				}
				if allOK[0] == 1 {
					if gcomm.Rank() == 0 {
						cfg.Journal.Emit(p.Now(), world.Rank(), fr.epoch, "checkpoint-restore",
							slog.Int("grid", mine.ID), slog.Int("step", step))
					}
					if err := solver.Restore(step, data); err != nil {
						k(err)
						return
					}
					recompute()
					return
				}
				if gcomm.Rank() == 0 {
					cfg.Journal.Emit(p.Now(), world.Rank(), fr.epoch, "checkpoint-fallback",
						slog.Int("grid", mine.ID), slog.Int("step", step))
				}
				cand = removeStep(cand, step)
				negotiate()
			})
		})
	}
	negotiate()
}

// recoverRC is recoverData's Resampling-and-Copying branch in CPS: for each
// lost grid, the partner's root gathers and ships its (possibly restricted)
// solution to the lost grid's root, which broadcasts it to its group.
func (fr *fiberRank) recoverRC(lost []int, atStep int, k func(error)) {
	rs, f := fr.rs, fr.f
	world, gcomm, solver, mine, mc := fr.world, fr.gcomm, fr.solver, fr.mine, fr.mc
	var next func(i int)
	next = func(i int) {
		if i >= len(lost) {
			k(nil)
			return
		}
		lg := lost[i]
		lostGrid := rs.grids[lg]
		src, resample, err := recoveryPartner(rs.grids, lostGrid)
		if err != nil {
			k(err)
			return
		}
		if containsInt(lost, src.ID) {
			k(fmt.Errorf("core: RC cannot recover grid %d: partner %d also lost", lg, src.ID))
			return
		}
		srcRoot, dstRoot := src.FirstRank, lostGrid.FirstRank
		if mc != nil {
			if mc.abandoned[src.ID] || mc.holed(src) {
				k(fmt.Errorf("core: RC cannot recover grid %d: partner %d unusable after shrink", lg, src.ID))
				return
			}
			srcRoot = mc.commRankOf(mc.liveRootOf(src))
			dstRoot = mc.commRankOf(mc.liveRootOf(lostGrid))
			if srcRoot < 0 || dstRoot < 0 {
				k(fmt.Errorf("core: RC recovery of grid %d: no surviving group root", lg))
				return
			}
		}
		asDst := func() {
			if mine.ID != lg {
				next(i + 1)
				return
			}
			gotVals := func(vals []float64) {
				mpi.FiberBcast(f, gcomm, 0, vals, func(vals []float64, err error) {
					if err != nil {
						k(err)
						return
					}
					g, err := grid.FromValues(lostGrid.Lv, vals)
					if err != nil {
						k(fmt.Errorf("core: RC transfer: %w", err))
						return
					}
					err = solver.SetFromGrid(g, atStep)
					mpi.ReleaseBuf(vals) // transport-owned (Recv at the group root, Bcast below it)
					if err != nil {
						k(err)
						return
					}
					next(i + 1)
				})
			}
			if gcomm.Rank() == 0 {
				mpi.FiberRecv[float64](f, world, srcRoot, tagRecoverBase+lg, func(vals []float64, _ mpi.Status, err error) {
					if err != nil {
						k(err)
						return
					}
					gotVals(vals)
				})
				return
			}
			gotVals(nil)
		}
		if mine.ID == src.ID {
			solver.FiberGather(f, 0, func(g *grid.Grid, err error) {
				if err != nil {
					k(err)
					return
				}
				if gcomm.Rank() == 0 {
					send := g
					if resample {
						// mpi.Send copies eagerly, so the pooled restriction
						// can be freed right after.
						send = grid.NewPooled(lostGrid.Lv)
						if err := grid.RestrictInto(g, send); err != nil {
							send.Free()
							k(err)
							return
						}
					}
					err := mpi.Send(world, dstRoot, tagRecoverBase+lg, send.V)
					if resample {
						send.Free()
					}
					if err != nil {
						k(err)
						return
					}
				}
				asDst()
			})
			return
		}
		asDst()
	}
	next(0)
}

// combinePhase is rs.combinePhase in CPS. SerialCombine is rejected in event
// mode (Config.Validate), so the parallel gather-scatter is the only branch.
func (fr *fiberRank) combinePhase() {
	rs, p, cfg := fr.rs, fr.p, fr.cfg
	world, mc := fr.world, fr.mc
	sp := cfg.Trace.BeginSpan(p.Now(), traceRank(world, mc), "combine", "")
	k := func(err error) {
		sp.End(p.Now())
		fr.done(err)
	}
	scheme, err := rs.computeScheme(p, rs.lostGridIDs(fr.failedList), world.Rank() == 0, mc)
	if err != nil {
		k(err)
		return
	}
	fr.combineParallel(scheme, k)
}

// combineParallel is rs.combineParallel in CPS: group-root gather, roots
// split, coefficient-weighted accumulation, elementwise reduce at rank 0.
func (fr *fiberRank) combineParallel(scheme combine.Scheme, k func(error)) {
	rs, p, f, cfg := fr.rs, fr.p, fr.f, fr.cfg
	world, gcomm, solver, mine := fr.world, fr.gcomm, fr.solver, fr.mine
	solver.FiberGather(f, 0, func(g *grid.Grid, err error) {
		if err != nil {
			k(fmt.Errorf("core: combine gather: %w", err))
			return
		}
		coeff := scheme.Coeff(mine.Lv)
		contribute := gcomm.Rank() == 0 && mine.Role != RoleDuplicate && coeff != 0
		color := mpi.Undefined
		if contribute || world.Rank() == 0 {
			color = 0
		}
		mpi.FiberSplit(f, world, color, mine.ID, func(roots *mpi.Comm, err error) {
			if err != nil {
				k(fmt.Errorf("core: combine split: %w", err))
				return
			}
			if roots == nil {
				k(nil)
				return
			}
			t0 := p.Now()
			target := grid.Level{I: cfg.Layout.N, J: cfg.Layout.N}
			oneShot := cfg.ComputeScale * float64(cfg.Steps) / nominalSteps
			partial := grid.NewPooled(target)
			if contribute {
				partial.AccumulateSampled(g, coeff)
				p.ComputeCells(target.Points(), oneShot)
			}
			mpi.FiberReduceSum(f, roots, 0, partial.V, func(total []float64, err error) {
				partial.Free()
				if err != nil {
					k(fmt.Errorf("core: combine reduce: %w", err))
					return
				}
				if roots.Rank() != 0 {
					k(nil)
					return
				}
				comb, err := grid.FromValues(target, total)
				if err != nil {
					k(err)
					return
				}
				rs.recordCombined(p, comb, t0)
				mpi.ReleaseBuf(total) // Reduce's root result is a pooled transport buffer
				k(nil)
			})
		})
	})
}

// --- fiber twins of the broadcast-sync helpers ----------------------------

// fiberSyncRecoveryInfo is syncRecoveryInfo for fiber code: same payload,
// same broadcast, same parse.
func fiberSyncRecoveryInfo(f *mpi.Fiber, world *mpi.Comm, step int, mine []int, k func(int, []int, error)) {
	mpi.FiberBcast(f, world, 0, recoveryInfoBuf(world, step, mine), func(out []int, err error) {
		k(parseRecoveryInfo(out, err))
	})
}

// fiberSyncRecoveryInfoMode is syncRecoveryInfoMode for fiber code.
func fiberSyncRecoveryInfoMode(f *mpi.Fiber, world *mpi.Comm, step int, failed, abandoned, origOf []int, k func(int, []int, []int, []int, error)) {
	mpi.FiberBcast(f, world, 0, recoveryInfoModeBuf(world, step, failed, abandoned, origOf), func(out []int, err error) {
		k(parseRecoveryInfoMode(world, out, err))
	})
}

// fiberAgreeRestoreStep is agreeRestoreStep for fiber code.
func fiberAgreeRestoreStep(f *mpi.Fiber, gcomm *mpi.Comm, cand []int, width int, k func(int, error)) {
	mpi.FiberAllgather(f, gcomm, restoreStepBuf(cand, width), func(all [][]int64, err error) {
		if err != nil {
			k(0, err)
			return
		}
		k(pickRestoreStep(cand, all), nil)
	})
}
