package core

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"ftsg/internal/mpi"
	"ftsg/internal/recovery"
)

// runBoth executes the same configuration on the goroutine path and on the
// event-driven path and requires the two Results to be deeply equal. Every
// Result field is virtual-time or structural — nothing wall-clock — so
// byte-identical is the contract, not a tolerance.
func runBoth(t *testing.T, label string, cfg Config) *Result {
	t.Helper()
	base, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s (goroutine): %v", label, err)
	}
	ev := cfg
	ev.Event = true
	evRes, err := Run(ev)
	if err != nil {
		t.Fatalf("%s (event): %v", label, err)
	}
	if !reflect.DeepEqual(base, evRes) {
		t.Errorf("%s: event Result diverges from goroutine Result:\n  goroutine: %+v\n  event:     %+v",
			label, base, evRes)
	}
	return base
}

// TestEventResultParity is the tentpole acceptance check at the core level:
// every technique x recovery-mode cell of the matrix — including the full
// kill → detect → revoke → shrink → respawn/claim → merge → split dance and
// the solver's recovery protocols — produces a byte-identical Result on the
// event-driven path.
func TestEventResultParity(t *testing.T) {
	for _, tech := range []Technique{CheckpointRestart, ResamplingCopying, AlternateCombination} {
		for _, mode := range []recovery.Mode{
			recovery.ModeSpawn, recovery.ModeShrink, recovery.ModeSubstitute, recovery.ModeNoRepair,
		} {
			runBoth(t, fmt.Sprintf("%v/%v", tech, mode), modeCfg(tech, mode))
		}
	}

	// Failure-free and simulated-loss paths (no repair dance, but the
	// combine phase and RC/AC recovery protocols still run).
	for _, tech := range []Technique{CheckpointRestart, ResamplingCopying, AlternateCombination} {
		runBoth(t, fmt.Sprintf("%v/plain", tech), fastCfg(tech))
		sim := fastCfg(tech)
		sim.NumFailures = 2
		sim.Seed = 9
		runBoth(t, fmt.Sprintf("%v/simulated", tech), sim)
	}
}

// TestEventChaosCampaign sweeps seeds over the real-failure matrix — the
// failure step and victim ranks differ per seed — and checks that each
// seed's Result is byte-identical across three executions: the goroutine
// path, the event path at the full machine width, and the event path at
// GOMAXPROCS=1. CI runs this under -race, which is what makes the
// GOMAXPROCS sweep meaningful: any scheduling-order dependence in the event
// executor shows up as either a race report or a fingerprint mismatch.
func TestEventChaosCampaign(t *testing.T) {
	seeds := 64
	if testing.Short() {
		seeds = 8
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for seed := 1; seed <= seeds; seed++ {
		tech := CheckpointRestart
		if seed%2 == 1 {
			tech = ResamplingCopying
		}
		for _, mode := range []recovery.Mode{recovery.ModeSpawn, recovery.ModeSubstitute} {
			cfg := fastCfg(tech)
			cfg.RecoveryMode = mode
			cfg.NumFailures = 1
			cfg.RealFailures = true
			cfg.Seed = int64(seed)
			cfg.Watchdog = mpi.Watchdog{Timeout: 120 * time.Second}
			label := fmt.Sprintf("seed %d %v/%v", seed, tech, mode)

			runtime.GOMAXPROCS(prev)
			base := runBoth(t, label, cfg)

			runtime.GOMAXPROCS(1)
			ev := cfg
			ev.Event = true
			narrow, err := Run(ev)
			runtime.GOMAXPROCS(prev)
			if err != nil {
				t.Fatalf("%s (event, GOMAXPROCS=1): %v", label, err)
			}
			if !reflect.DeepEqual(base, narrow) {
				t.Errorf("%s: event Result diverges at GOMAXPROCS=1:\n  wide:   %+v\n  narrow: %+v",
					label, base, narrow)
			}
			if t.Failed() {
				return // one divergent seed is enough to diagnose
			}
		}
	}
}

// TestEventWorkersBounds pins the EventWorkers plumbing: an explicit pool
// width of 1 (fully serial executor) still reproduces the goroutine
// Result, including through a repair.
func TestEventWorkersBounds(t *testing.T) {
	cfg := modeCfg(CheckpointRestart, recovery.ModeSpawn)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev := cfg
	ev.Event = true
	ev.EventWorkers = 1
	got, err := Run(ev)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Errorf("EventWorkers=1 Result diverges:\n  goroutine: %+v\n  event:     %+v", base, got)
	}
}
