package combine

import (
	"testing"

	"ftsg/internal/grid"
	"ftsg/internal/pde"
)

func BenchmarkEvaluate(b *testing.B) {
	ly := Layout{N: 8, L: 4}
	s := ly.Classic()
	sols := make(map[grid.Level]*grid.Grid, len(s))
	for _, c := range s {
		g := grid.New(c.Lv)
		g.Fill(pde.SinProduct)
		sols[c.Lv] = g
	}
	target := grid.Level{I: 8, J: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(s, sols, target); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassicScheme(b *testing.B) {
	ly := Layout{N: 13, L: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ly.Classic()
	}
}
