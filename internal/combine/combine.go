// Package combine implements the sparse grid combination technique of the
// paper (Eq. 1): the solution is computed on several small anisotropic
// sub-grids and combined as
//
//	u_s = Σ_{i+j=2n-l+1} u_{i,j}  −  Σ_{i+j=2n-l} u_{i,j}
//
// where n is the full-grid exponent and l >= 4 the level. The package
// provides the paper's grid layout (diagonal, lower-diagonal, duplicate and
// extra-layer rows, Fig. 1), the classic ±1 coefficients, and evaluation of
// a combination scheme onto a common grid.
package combine

import (
	"fmt"
	"sort"

	"ftsg/internal/grid"
)

// Component is one sub-grid with its combination coefficient.
type Component struct {
	Lv    grid.Level
	Coeff float64
}

// Scheme is a combination scheme: the list of sub-grids to combine with
// their coefficients.
type Scheme []Component

// CoeffSum returns the sum of the coefficients. Any consistent combination
// scheme sums to 1 (a constant field must combine to itself).
func (s Scheme) CoeffSum() float64 {
	var sum float64
	for _, c := range s {
		sum += c.Coeff
	}
	return sum
}

// Levels returns the scheme's sub-grid levels in scheme order.
func (s Scheme) Levels() []grid.Level {
	out := make([]grid.Level, len(s))
	for i, c := range s {
		out[i] = c.Lv
	}
	return out
}

// Coeff returns the coefficient of the given level, or 0 if absent.
func (s Scheme) Coeff(lv grid.Level) float64 {
	for _, c := range s {
		if c.Lv == lv {
			return c.Coeff
		}
	}
	return 0
}

// Layout fixes the paper's grid geometry: full-grid exponent N and level L.
type Layout struct {
	N, L int
}

// Validate checks the paper's constraint l >= 4 (so every row is non-empty
// down to two extra layers) and n >= l.
func (ly Layout) Validate() error {
	if ly.L < 4 {
		return fmt.Errorf("combine: level %d < 4", ly.L)
	}
	if ly.N < ly.L {
		return fmt.Errorf("combine: full grid exponent %d < level %d", ly.N, ly.L)
	}
	return nil
}

// Row returns the sub-grid levels with i+j = 2N-L+1-d and i,j >= N-L+1:
// d = 0 is the diagonal (L grids), d = 1 the lower diagonal (L-1 grids),
// d >= 2 the extra layers used by the Alternate Combination technique
// (L-d grids each). An out-of-range d yields an empty row.
func (ly Layout) Row(d int) []grid.Level {
	minLv := ly.N - ly.L + 1
	sum := 2*ly.N - ly.L + 1 - d
	var out []grid.Level
	for i := minLv; i <= ly.N; i++ {
		j := sum - i
		if j < minLv || j > ly.N {
			continue
		}
		out = append(out, grid.Level{I: i, J: j})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].I < out[b].I })
	return out
}

// Diagonal returns the L diagonal sub-grids (IDs 0..L-1 in the paper's
// Fig. 1 numbering).
func (ly Layout) Diagonal() []grid.Level { return ly.Row(0) }

// LowerDiagonal returns the L-1 lower-diagonal sub-grids.
func (ly Layout) LowerDiagonal() []grid.Level { return ly.Row(1) }

// ExtraLayers returns the sub-grids of the first k extra layers below the
// lower diagonal (the Alternate Combination technique uses k = 2).
func (ly Layout) ExtraLayers(k int) []grid.Level {
	var out []grid.Level
	for d := 2; d < 2+k; d++ {
		out = append(out, ly.Row(d)...)
	}
	return out
}

// Classic returns the standard combination scheme: +1 on the diagonal,
// -1 on the lower diagonal (Eq. 1 of the paper).
func (ly Layout) Classic() Scheme {
	var s Scheme
	for _, lv := range ly.Diagonal() {
		s = append(s, Component{Lv: lv, Coeff: 1})
	}
	for _, lv := range ly.LowerDiagonal() {
		s = append(s, Component{Lv: lv, Coeff: -1})
	}
	return s
}

// Evaluate combines the given sub-grid solutions according to the scheme,
// sampling each bilinearly onto a fresh grid of the target level. Every
// scheme component must have a solution.
func Evaluate(s Scheme, solutions map[grid.Level]*grid.Grid, target grid.Level) (*grid.Grid, error) {
	out := grid.New(target)
	if err := EvaluateInto(out, s, solutions); err != nil {
		return nil, err
	}
	return out, nil
}

// EvaluateInto is Evaluate with a caller-provided destination grid
// (typically pooled, see grid.NewPooled): dst is zeroed and the combination
// is accumulated into it, allocating nothing.
func EvaluateInto(dst *grid.Grid, s Scheme, solutions map[grid.Level]*grid.Grid) error {
	dst.Zero()
	for _, c := range s {
		sol, ok := solutions[c.Lv]
		if !ok {
			return fmt.Errorf("combine: no solution for sub-grid %v", c.Lv)
		}
		if sol.Lv != c.Lv {
			return fmt.Errorf("combine: solution level %v does not match component %v", sol.Lv, c.Lv)
		}
		dst.AccumulateSampled(sol, c.Coeff)
	}
	return nil
}

// InterpolationScheme samples f on every component grid and combines,
// returning the combined interpolant on the target level. It isolates the
// pure combination error from solver error, for tests and diagnostics.
func InterpolationScheme(s Scheme, f func(x, y float64) float64, target grid.Level) (*grid.Grid, error) {
	sols := make(map[grid.Level]*grid.Grid, len(s))
	for _, c := range s {
		g := grid.New(c.Lv)
		g.Fill(f)
		sols[c.Lv] = g
	}
	return Evaluate(s, sols, target)
}
