package combine

import (
	"math"
	"testing"

	"ftsg/internal/grid"
	"ftsg/internal/pde"
)

func TestLayoutRowsMatchFig1(t *testing.T) {
	// Paper Fig. 1 with n = 13, l = 4.
	ly := Layout{N: 13, L: 4}
	if err := ly.Validate(); err != nil {
		t.Fatal(err)
	}
	diag := ly.Diagonal()
	if len(diag) != 4 {
		t.Fatalf("diagonal has %d grids, want 4", len(diag))
	}
	want := []grid.Level{{I: 10, J: 13}, {I: 11, J: 12}, {I: 12, J: 11}, {I: 13, J: 10}}
	for i := range want {
		if diag[i] != want[i] {
			t.Fatalf("diagonal = %v, want %v", diag, want)
		}
	}
	lower := ly.LowerDiagonal()
	wantLower := []grid.Level{{I: 10, J: 12}, {I: 11, J: 11}, {I: 12, J: 10}}
	if len(lower) != 3 {
		t.Fatalf("lower diagonal has %d grids, want 3", len(lower))
	}
	for i := range wantLower {
		if lower[i] != wantLower[i] {
			t.Fatalf("lower = %v, want %v", lower, wantLower)
		}
	}
	extra := ly.ExtraLayers(2)
	wantExtra := []grid.Level{{I: 10, J: 11}, {I: 11, J: 10}, {I: 10, J: 10}}
	if len(extra) != 3 {
		t.Fatalf("extra layers have %d grids, want 3 (IDs 11-13)", len(extra))
	}
	for _, e := range wantExtra {
		found := false
		for _, g := range extra {
			if g == e {
				found = true
			}
		}
		if !found {
			t.Fatalf("extra layers %v missing %v", extra, e)
		}
	}
}

func TestLayoutRowCounts(t *testing.T) {
	// Row d has L-d grids for any layout with n >= l.
	for _, ly := range []Layout{{N: 8, L: 4}, {N: 13, L: 4}, {N: 10, L: 5}, {N: 9, L: 6}} {
		for d := 0; d < ly.L; d++ {
			if got := len(ly.Row(d)); got != ly.L-d {
				t.Errorf("layout %+v row %d has %d grids, want %d", ly, d, got, ly.L-d)
			}
		}
	}
}

func TestLayoutValidate(t *testing.T) {
	if err := (Layout{N: 8, L: 3}).Validate(); err == nil {
		t.Error("l=3 accepted")
	}
	if err := (Layout{N: 3, L: 4}).Validate(); err == nil {
		t.Error("n<l accepted")
	}
}

func TestClassicSchemeCoefficients(t *testing.T) {
	ly := Layout{N: 8, L: 4}
	s := ly.Classic()
	if len(s) != 7 {
		t.Fatalf("classic scheme has %d components, want 7", len(s))
	}
	if s.CoeffSum() != 1 {
		t.Fatalf("coefficient sum = %g, want 1", s.CoeffSum())
	}
	for _, lv := range ly.Diagonal() {
		if s.Coeff(lv) != 1 {
			t.Errorf("diagonal %v coeff = %g, want 1", lv, s.Coeff(lv))
		}
	}
	for _, lv := range ly.LowerDiagonal() {
		if s.Coeff(lv) != -1 {
			t.Errorf("lower %v coeff = %g, want -1", lv, s.Coeff(lv))
		}
	}
	if s.Coeff(grid.Level{I: 1, J: 1}) != 0 {
		t.Error("absent level has non-zero coefficient")
	}
}

// TestCombinationInterpolationAccuracy: the combined interpolant of a smooth
// function converges as the full-grid exponent n grows (for fixed level l,
// the paper's parameterisation puts the diagonal at i+j = 2n-l+1, so larger
// n means finer component grids).
func TestCombinationInterpolationAccuracy(t *testing.T) {
	f := pde.SinProduct
	var prev float64
	for _, n := range []int{6, 7, 8} {
		ly := Layout{N: n, L: 4}
		target := grid.Level{I: n, J: n}
		comb, err := InterpolationScheme(ly.Classic(), f, target)
		if err != nil {
			t.Fatal(err)
		}
		e := comb.L1Error(f)
		if n > 6 && e >= prev {
			t.Errorf("n=%d error %g did not improve on %g", n, e, prev)
		}
		prev = e
	}
	if prev > 1e-5 {
		t.Errorf("n=8 combination error %g too large", prev)
	}
}

// TestCombinationExactForConstant: coefficients sum to 1, so a constant
// combines exactly.
func TestCombinationExactForConstant(t *testing.T) {
	ly := Layout{N: 7, L: 4}
	comb, err := InterpolationScheme(ly.Classic(), func(x, y float64) float64 { return 3.25 }, grid.Level{I: 7, J: 7})
	if err != nil {
		t.Fatal(err)
	}
	if e := comb.MaxError(func(x, y float64) float64 { return 3.25 }); e > 1e-12 {
		t.Fatalf("constant combination error %g", e)
	}
}

// TestCombinationExactForBilinear: every component grid reproduces bilinear
// functions exactly, so the combination does too.
func TestCombinationExactForBilinear(t *testing.T) {
	ly := Layout{N: 6, L: 4}
	f := func(x, y float64) float64 { return 1 + 2*x - y + 0.5*x*y }
	comb, err := InterpolationScheme(ly.Classic(), f, grid.Level{I: 6, J: 6})
	if err != nil {
		t.Fatal(err)
	}
	if e := comb.MaxError(f); e > 1e-12 {
		t.Fatalf("bilinear combination error %g", e)
	}
}

func TestEvaluateValidation(t *testing.T) {
	ly := Layout{N: 6, L: 4}
	s := ly.Classic()
	// Missing solution.
	if _, err := Evaluate(s, map[grid.Level]*grid.Grid{}, grid.Level{I: 6, J: 6}); err == nil {
		t.Error("missing solutions accepted")
	}
	// Wrong level under a right key.
	sols := make(map[grid.Level]*grid.Grid)
	for _, c := range s {
		sols[c.Lv] = grid.New(c.Lv)
	}
	sols[s[0].Lv] = grid.New(grid.Level{I: 1, J: 1})
	if _, err := Evaluate(s, sols, grid.Level{I: 6, J: 6}); err == nil {
		t.Error("mismatched solution level accepted")
	}
}

// TestCombinedSolverError mirrors the paper's no-failure baseline: solve the
// advection problem on every component grid, combine, and compare with the
// analytic solution. The error must be small but non-zero (it reflects "an
// advection solver using the sparse grid combination technique at the given
// grid resolutions", Section III-C).
func TestCombinedSolverError(t *testing.T) {
	prob := &pde.Problem{Ax: 1, Ay: 0.5, U0: pde.SinProduct}
	ly := Layout{N: 7, L: 4}
	h := math.Pow(2, -float64(ly.N))
	dt := pde.StableDt(h, h, prob.Ax, prob.Ay, 0.8)
	nsteps := 128
	s := ly.Classic()
	sols := make(map[grid.Level]*grid.Grid)
	for _, c := range s {
		sols[c.Lv] = pde.Solve(c.Lv, prob, dt, nsteps)
	}
	comb, err := Evaluate(s, sols, grid.Level{I: ly.N, J: ly.N})
	if err != nil {
		t.Fatal(err)
	}
	e := comb.L1Error(prob.Exact(float64(nsteps) * dt))
	if e == 0 {
		t.Fatal("suspiciously exact combined solution")
	}
	if e > 0.02 {
		t.Fatalf("combined solver error %g too large", e)
	}
}
