// Recovery narrates the ULFM recovery protocol at the runtime level,
// re-enacting the paper's Fig. 2: a 7-process communicator loses ranks 3
// and 5; the survivors detect the failure with a barrier, revoke and shrink
// the communicator, re-spawn the failed processes on their original hosts,
// merge, and re-order ranks so the reconstructed communicator is
// indistinguishable from the original.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"ftsg/internal/mpi"
	"ftsg/internal/recovery"
	"ftsg/internal/vtime"
)

func main() {
	var mu sync.Mutex
	narrate := func(format string, args ...any) {
		mu.Lock()
		fmt.Printf(format+"\n", args...)
		mu.Unlock()
	}

	type outcome struct {
		world, rank, host int
		child             bool
	}
	var outcomes []outcome
	record := func(o outcome) {
		mu.Lock()
		outcomes = append(outcomes, o)
		mu.Unlock()
	}

	rep, err := mpi.Run(mpi.Options{
		NProcs:  7,
		Machine: vtime.OPL(),
		Entry: func(p *mpi.Proc) {
			var st recovery.Stats
			if parent := p.Parent(); parent != nil {
				rec, rank, err := recovery.Reconstruct(p, nil, parent, &st)
				if err != nil {
					log.Fatal(err)
				}
				narrate("  [child %d] attached, merged high, split back to rank %d on host %d",
					p.WorldRank(), rank, p.Host())
				record(outcome{p.WorldRank(), rank, p.Host(), true})
				if err := rec.Barrier(); err != nil {
					log.Fatal(err)
				}
				return
			}
			c := p.World()
			if c.Rank() == 3 || c.Rank() == 5 {
				narrate("  [rank %d] kill(getpid(), SIGKILL) at t=%.3fs on host %d",
					c.Rank(), p.Now(), p.Host())
				p.Kill()
			}
			rec, rank, err := recovery.Reconstruct(p, c, nil, &st)
			if err != nil {
				log.Fatal(err)
			}
			if rank == 0 {
				narrate("  [rank 0] failed ranks %v detected in %.3fs; repaired in %.2fs "+
					"(shrink %.2fs, spawn %.2fs, merge %.3fs, agree %.2fs, split %.3fs, %d loop iterations)",
					st.FailedRanks, st.ListTime, st.ReconstructTime,
					st.ShrinkTime, st.SpawnTime, st.MergeTime, st.AgreeTime, st.SplitTime, st.Iterations)
			}
			record(outcome{p.WorldRank(), rank, p.Host(), false})
			if err := rec.Barrier(); err != nil {
				log.Fatal(err)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("failures: world ranks %v; %d processes re-spawned\n", rep.Failed, rep.Spawned)
	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].rank < outcomes[j].rank })
	fmt.Println("reconstructed communicator (same size, same rank order, same hosts):")
	for _, o := range outcomes {
		kind := "survivor   "
		if o.child {
			kind = "replacement"
		}
		fmt.Printf("  rank %d <- %s world id %d on host %d\n", o.rank, kind, o.world, o.host)
	}
}
