// Advection2d demonstrates the substrate without fault tolerance: a plain
// parallel sparse-grid-combination solve of the 2D advection equation on
// the simulated MPI runtime, compared against the analytic solution and a
// single full-grid solve — showing the combination technique's accuracy at
// a fraction of the cost.
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"ftsg/internal/combine"
	"ftsg/internal/grid"
	"ftsg/internal/mpi"
	"ftsg/internal/pde"
	"ftsg/internal/vtime"
)

func main() {
	prob := &pde.Problem{Ax: 1, Ay: 0.5, U0: pde.SinProduct}
	ly := combine.Layout{N: 8, L: 4}
	h := math.Pow(2, -float64(ly.N))
	dt := pde.StableDt(h, h, prob.Ax, prob.Ay, 0.8)
	const steps = 200

	scheme := ly.Classic()
	nprocsPer := 4 // processes per sub-grid group
	nprocs := len(scheme) * nprocsPer

	var mu sync.Mutex
	sols := make(map[grid.Level]*grid.Grid)
	var maxTime float64

	rep, err := mpi.Run(mpi.Options{
		NProcs:  nprocs,
		Machine: vtime.OPL(),
		Entry: func(p *mpi.Proc) {
			world := p.World()
			gridIdx := world.Rank() / nprocsPer
			gc, err := world.Split(gridIdx, world.Rank())
			if err != nil {
				log.Fatal(err)
			}
			lv := scheme[gridIdx].Lv
			s, err := pde.NewParallelSolver(gc, prob, lv, dt)
			if err != nil {
				log.Fatal(err)
			}
			s.Charge = func(cells int) { p.ComputeCells(cells, 1) }
			if err := s.Run(steps); err != nil {
				log.Fatal(err)
			}
			g, err := s.Gather(0)
			if err != nil {
				log.Fatal(err)
			}
			if gc.Rank() == 0 {
				mu.Lock()
				sols[lv] = g
				mu.Unlock()
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	maxTime = rep.MaxVirtualTime

	comb, err := combine.Evaluate(scheme, sols, grid.Level{I: ly.N, J: ly.N})
	if err != nil {
		log.Fatal(err)
	}
	exact := prob.Exact(float64(steps) * dt)
	combErr := comb.L1Error(exact)

	// Reference: a single full-grid solve at the same resolution.
	full := pde.Solve(grid.Level{I: ly.N, J: ly.N}, prob, dt, steps)
	fullErr := full.L1Error(exact)

	var combPoints int
	for _, c := range scheme {
		combPoints += c.Lv.Points()
	}
	fullPoints := grid.Level{I: ly.N, J: ly.N}.Points()

	fmt.Println("sparse grid combination vs full grid (2D advection, Lax-Wendroff)")
	fmt.Printf("  %d sub-grids on %d simulated processes, %d steps\n", len(scheme), nprocs, steps)
	fmt.Printf("  combination l1 error: %.3e using %8d points\n", combErr, combPoints)
	fmt.Printf("  full grid l1 error:   %.3e using %8d points (%.1fx more)\n",
		fullErr, fullPoints, float64(fullPoints)/float64(combPoints))
	fmt.Printf("  virtual run time:     %.2f s\n", maxTime)
}
