// Nodefailure demonstrates the paper's stated future work: "the use of
// spare nodes in the case of node failure, in which case all the processes
// on that node will fail and be restarted on the new node. This will have
// the same load balancing characteristics as our current approach."
//
// One entire host of the simulated cluster dies mid-solve (all of its
// processes fail together); the recovery protocol re-spawns every lost
// process onto a spare node, the communicator keeps its size and rank
// order, and the application completes with a bounded error.
package main

import (
	"fmt"
	"log"

	"ftsg/internal/core"
	"ftsg/internal/vtime"
)

func main() {
	cfg := core.Config{
		Technique:    core.AlternateCombination,
		Machine:      vtime.OPL(),
		DiagProcs:    8, // 49 processes over 5 hosts of 12 slots
		Steps:        128,
		RealFailures: true,
		NodeFailure:  true,
		SpareNodes:   1,
		Seed:         7,
	}

	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("node failure with spare-node recovery (paper Section V, future work)")
	fmt.Printf("  processes:        %d over %d hosts + 1 spare\n",
		res.Procs, (res.Procs+11)/12)
	fmt.Printf("  node failure:     ranks %v died together\n", res.FailedRanks)
	fmt.Printf("  re-spawned:       %d replacements, all on the spare node\n", res.Spawned)
	fmt.Printf("  lost sub-grids:   %v (recovered by alternate combination)\n", res.LostGrids)
	fmt.Printf("  reconstruction:   %.2f s virtual (spawn %.2f, shrink %.2f, agree %.2f)\n",
		res.ReconstructTime, res.SpawnTime, res.ShrinkTime, res.AgreeTime)
	fmt.Printf("  combined l1 err:  %.4e\n", res.L1Error)
	fmt.Printf("  total time:       %.1f s virtual\n", res.TotalTime)
}
