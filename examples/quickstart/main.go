// Quickstart: run the fault-tolerant sparse-grid PDE solver once, kill two
// processes mid-run, and watch the application survive: the communicator is
// reconstructed at full size with the original rank order, the lost
// sub-grid data is recovered, and the combined solution is produced with a
// bounded error.
package main

import (
	"fmt"
	"log"

	"ftsg/internal/core"
	"ftsg/internal/vtime"
)

func main() {
	cfg := core.Config{
		Technique:    core.AlternateCombination,
		Machine:      vtime.OPL(),
		DiagProcs:    8, // the paper's 49-process AC layout
		Steps:        128,
		NumFailures:  2,
		RealFailures: true, // really kill the processes, then recover
		Seed:         2014,
	}

	baseline := cfg
	baseline.NumFailures = 0
	base, err := core.Run(baseline)
	if err != nil {
		log.Fatal(err)
	}

	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("fault-tolerant sparse grid combination solver (2D advection)")
	fmt.Printf("  processes:       %d across %d sub-grids\n", res.Procs, res.GridCount)
	fmt.Printf("  killed ranks:    %v (re-spawned on their original hosts)\n", res.FailedRanks)
	fmt.Printf("  lost sub-grids:  %v\n", res.LostGrids)
	fmt.Printf("  reconstruction:  %.2f s virtual (shrink %.2f + spawn %.2f + agree %.2f)\n",
		res.ReconstructTime, res.ShrinkTime, res.SpawnTime, res.AgreeTime)
	fmt.Printf("  l1 error:        %.3e with failures vs %.3e baseline (%.1fx)\n",
		res.L1Error, base.L1Error, res.L1Error/base.L1Error)
	fmt.Printf("  total time:      %.1f s with failures vs %.1f s baseline\n",
		res.TotalTime, base.TotalTime)
}
