// Checkpointing reproduces the paper's disk-latency crossover (Fig. 9b) as
// a runnable study: the Checkpoint/Restart technique is the most expensive
// recovery method on a cluster with typical disk write latency (OPL,
// T_I/O = 3.52 s) but the cheapest on one with ultra-low latency (Raijin,
// T_I/O = 0.03 s), once the extra processes of the redundancy-based
// techniques are accounted for.
package main

import (
	"fmt"
	"log"

	"ftsg/internal/core"
	"ftsg/internal/vtime"
)

func main() {
	pc := core.Config{Technique: core.CheckpointRestart, DiagProcs: 8}.WithDefaults().NumProcs()

	fmt.Println("process-time data recovery overhead, one lost grid (paper Fig. 9b)")
	fmt.Printf("%8s  %4s  %7s  %12s  %14s  %16s\n",
		"machine", "tech", "procs", "ckpts", "recovery (s)", "process-time (s)")

	for _, machine := range []*vtime.Machine{vtime.OPL(), vtime.Raijin()} {
		for _, tech := range []core.Technique{
			core.CheckpointRestart, core.ResamplingCopying, core.AlternateCombination,
		} {
			res, err := core.Run(core.Config{
				Technique:   tech,
				Machine:     machine,
				DiagProcs:   8,
				Steps:       256,
				NumFailures: 1,
				Seed:        9,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8s  %4s  %7d  %12d  %12.3f  %16.2f\n",
				machine.Name, tech, res.Procs, res.CheckpointWrites,
				res.RecoveryOverhead(), res.ProcessTimeOverhead(pc))
		}
	}
	fmt.Println()
	fmt.Println("reading: on OPL the Alternate Combination is cheapest and CR dearest;")
	fmt.Println("on Raijin the ultra-low T_I/O gives Checkpoint/Restart 'a clear ascendancy'.")
}
