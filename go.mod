module ftsg

go 1.22
